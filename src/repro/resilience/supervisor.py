"""Supervised per-point execution for parallel sweeps.

:func:`run_supervised` replaces the old ``pool.map`` fan-out in
:func:`repro.perf.runner.sim_map` with per-point futures under a
supervisor loop, mirroring the paper's own lazy-with-eager-fallback
shape: try the cheap path, detect failure, and recover instead of
aborting the world.  The supervisor guarantees:

* **crash survival** — a worker death (``os._exit``, OOM kill, segfault)
  breaks the :class:`~concurrent.futures.ProcessPoolExecutor`; the
  supervisor respawns the pool and retries only the unfinished points.
  Because at most ``jobs`` futures are ever in flight, the suspect set
  for a crash is small; suspects are re-run **one at a time** (isolation
  mode) so the next crash unambiguously convicts a single point, and
  innocent bystanders are retried without consuming attempts.
* **per-point wall-clock deadlines** — an attempt exceeding its budget
  (:func:`repro.resilience.deadline.point_timeout`) gets its pool
  killed; the timed-out point is charged an attempt, collateral
  in-flight points are not.
* **bounded retries with backoff** — attempts per point are capped
  (:func:`~repro.resilience.deadline.max_attempts`), retries wait out a
  deterministic exponential backoff, and persistently failing points
  are quarantined into a :class:`~repro.resilience.report.PointFailure`
  rather than looping forever.  A global pool-break budget guarantees
  termination even under adversarial failure patterns.
* **deterministic failure classification** — an in-worker exception
  deriving from :class:`~repro.common.errors.ReproError` (a livelock, a
  cycle-deadline, a config error, a sanitizer report) will recur on
  every retry, so it quarantines immediately and, under ``strict``,
  carries the *original* exception back to the caller.

The supervisor runs entirely in the parent process and never touches
simulated state; its one clock is
:func:`repro.perf.hostclock.host_seconds`, the sanctioned host-time
funnel.  Results flow out through the ``on_done`` callback *as each
point completes*, which is what makes checkpoint-resume work: the
caller persists every fresh result immediately, so an interrupted sweep
loses at most the points still in flight.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import sleep
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import DeadlineError, LivelockError, ReproError
from repro.resilience.deadline import Backoff
from repro.resilience.report import PointFailure

#: Span/attempt callback: (index, name, attempt, start_s, end_s,
#: reason, cause) — reason is one of report.ATTEMPT_REASONS.
AttemptHook = Callable[[int, str, int, float, float, str, Optional[str]],
                       None]


@dataclass(frozen=True)
class SupervisorConfig:
    """Budgets and policy for one supervised sweep."""

    jobs: int
    policy: str = "strict"              # "strict" | "partial"
    wall_timeout: Optional[float] = None   # host seconds per attempt
    max_attempts: int = 3
    backoff: Backoff = Backoff()
    tick: float = 0.05                  # supervisor poll interval (s)
    break_budget: Optional[int] = None  # None = derived from task count
    initializer: Optional[Callable[[], None]] = None


@dataclass
class SweepOutcome:
    """What the supervisor has to say after the loop ends."""

    failures: List[PointFailure] = field(default_factory=list)
    completed: int = 0
    pool_breaks: int = 0
    aborted: bool = False               # strict fail-fast stop
    abort_exc: Optional[BaseException] = None  # original exc to re-raise
    budget_exhausted: bool = False


class _PointState:
    """Mutable supervisor-side bookkeeping for one sweep point."""

    __slots__ = ("index", "point", "key", "attempts", "started_at",
                 "eligible_at")

    def __init__(self, index: int, point: Any, key: Optional[str]):
        self.index = index
        self.point = point
        self.key = key
        self.attempts = 0          # attempts charged (crash/timeout/error)
        self.started_at = 0.0      # host_seconds at submission
        self.eligible_at = 0.0     # earliest host_seconds to resubmit


def _failure_kind(exc: BaseException) -> str:
    if isinstance(exc, DeadlineError):
        return "sim-deadline"
    if isinstance(exc, LivelockError):
        return "livelock"
    return "error"


def _cause(exc: BaseException) -> str:
    text = str(exc).strip().splitlines()
    head = text[0] if text else ""
    return f"{type(exc).__name__}: {head}" if head else type(exc).__name__


def _kill_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Hard-stop a pool: SIGKILL its workers, then detach from it.

    ``shutdown`` alone waits politely for running calls — useless
    against a point that hangs or sleeps past its deadline.  The
    worker-process table is an executor internal, so fall back to a
    plain shutdown if it ever disappears.
    """
    if pool is None:
        return
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except (OSError, AttributeError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_supervised(run_fn: Callable[[Any], Any],
                   tasks: List[Tuple[int, Any, Optional[str]]],
                   config: SupervisorConfig,
                   on_done: Callable[[int, Any], None],
                   on_attempt: Optional[AttemptHook] = None) -> SweepOutcome:
    """Run every task under supervision; results stream via ``on_done``.

    ``tasks`` is ``[(index, point, cache_key_or_None), ...]``;
    ``run_fn(point)`` must be picklable (a module-level function).
    ``on_done(index, value)`` is invoked in the parent as each point
    completes — callers checkpoint there.  Returns a
    :class:`SweepOutcome`; the caller decides how to surface failures
    (raise under ``strict``, holes under ``partial``).
    """
    # Imported here, not at module top: repro.perf imports this module
    # from its runner, so reaching back into repro.perf.hostclock at
    # import time would be circular.  hostclock is the sanctioned
    # wall-clock funnel (MC2001) — supervision is host-time territory.
    from repro.perf.hostclock import host_seconds

    outcome = SweepOutcome()
    if not tasks:
        return outcome
    states = {index: _PointState(index, point, key)
              for index, point, key in tasks}
    pending: deque = deque(sorted(states))  # not-yet-submitted indices
    isolate: deque = deque()                # crash suspects, run solo
    in_flight: Dict[Future, int] = {}
    strict = config.policy == "strict"
    budget = (config.break_budget if config.break_budget is not None
              else len(tasks) * (config.max_attempts + 1) + 8)
    consecutive_breaks = 0
    context = multiprocessing.get_context("fork")

    def span(state: _PointState, end: float, reason: str,
             cause: Optional[str]) -> None:
        if on_attempt is not None:
            on_attempt(state.index, state.point.name,
                       state.attempts, state.started_at, end, reason,
                       cause)

    def quarantine(state: _PointState, kind: str, cause: str,
                   exc: Optional[BaseException]) -> None:
        outcome.failures.append(PointFailure(
            index=state.index, name=state.point.name, kind=kind,
            cause=cause, attempts=max(1, state.attempts), key=state.key))
        if strict:
            outcome.aborted = True
            outcome.abort_exc = exc

    def next_eligible(queue: deque, now: float) -> Optional[int]:
        for _ in range(len(queue)):
            if states[queue[0]].eligible_at <= now:
                return queue.popleft()
            queue.rotate(-1)
        return None

    pool: Optional[ProcessPoolExecutor] = \
        ProcessPoolExecutor(max_workers=config.jobs, mp_context=context,
                            initializer=config.initializer)

    def submit(index: int) -> bool:
        """Dispatch one point; False when the pool is already broken."""
        state = states[index]
        state.started_at = host_seconds()
        try:
            future = pool.submit(run_fn, state.point)
        except (BrokenProcessPool, RuntimeError):
            pending.appendleft(index)
            return False
        in_flight[future] = index
        return True

    def respawn() -> None:
        nonlocal pool, consecutive_breaks
        outcome.pool_breaks += 1
        consecutive_breaks += 1
        _kill_pool(pool)
        pool = None
        delay = config.backoff.delay(consecutive_breaks)
        if delay > 0:
            sleep(delay)
        pool = ProcessPoolExecutor(max_workers=config.jobs,
                                   mp_context=context,
                                   initializer=config.initializer)

    try:
        while (pending or isolate or in_flight) and not outcome.aborted:
            now = host_seconds()
            # ---- submit: isolation mode runs one suspect at a time and
            # starves the normal queue until every suspect is resolved.
            broken = False
            if isolate:
                if not in_flight and states[isolate[0]].eligible_at <= now:
                    broken |= not submit(isolate.popleft())
            else:
                while len(in_flight) < config.jobs and pending:
                    index = next_eligible(pending, now)
                    if index is None:
                        break
                    if not submit(index):
                        broken = True
                        break

            # ---- reap
            if in_flight and not broken:
                done, _ = wait(list(in_flight), timeout=config.tick,
                               return_when=FIRST_COMPLETED)
            else:
                done = set()
                if not in_flight:
                    sleep(config.tick)
            suspects: List[int] = []
            for future in done:
                index = in_flight.pop(future)
                state = states[index]
                exc = future.exception()
                end = host_seconds()
                if exc is None:
                    span(state, end, "ok", None)
                    outcome.completed += 1
                    consecutive_breaks = 0
                    on_done(index, future.result())
                elif isinstance(exc, BrokenProcessPool):
                    broken = True
                    suspects.append(index)
                elif isinstance(exc, ReproError):
                    # Deterministic: identical inputs will fail
                    # identically — retrying burns the budget for
                    # nothing, so quarantine on first sight.
                    state.attempts += 1
                    span(state, end, "quarantined", _cause(exc))
                    quarantine(state, _failure_kind(exc), _cause(exc), exc)
                else:
                    state.attempts += 1
                    if state.attempts >= config.max_attempts:
                        span(state, end, "quarantined", _cause(exc))
                        quarantine(state, "error", _cause(exc), exc)
                    else:
                        span(state, end, "retried", _cause(exc))
                        state.eligible_at = now + config.backoff.delay(
                            state.attempts)
                        pending.append(index)
            if outcome.aborted:
                break

            # ---- pool break: everything still in flight is a suspect.
            if broken:
                suspects.extend(in_flight.pop(future)
                                for future in list(in_flight))
                suspects.sort()
                now = host_seconds()
                sole = len(suspects) == 1
                for index in suspects:
                    state = states[index]
                    if sole:
                        # Running alone when the pool died: convicted.
                        state.attempts += 1
                        cause = ("worker process died "
                                 "(killed/os._exit/segfault)")
                        if state.attempts >= config.max_attempts:
                            span(state, now, "quarantined", cause)
                            quarantine(state, "crash", cause, None)
                            continue
                        span(state, now, "crash", cause)
                        state.eligible_at = now + config.backoff.delay(
                            state.attempts)
                    else:
                        # One of several — retried in isolation, not
                        # charged an attempt.
                        span(state, now, "retried", "pool break (suspect)")
                        state.eligible_at = now
                    isolate.append(index)
                if outcome.aborted:
                    break
                if outcome.pool_breaks + 1 > budget:
                    outcome.budget_exhausted = True
                    outcome.aborted = True
                    break
                respawn()
                continue

            # ---- wall-clock deadlines: kill the pool, charge only the
            # overdue points; collateral goes back to the normal queue.
            if config.wall_timeout is None or not in_flight:
                continue
            now = host_seconds()
            overdue = sorted(
                index for index in in_flight.values()
                if now - states[index].started_at > config.wall_timeout)
            if not overdue:
                continue
            collateral = sorted(index for index in in_flight.values()
                                if index not in overdue)
            in_flight.clear()
            for index in overdue:
                state = states[index]
                state.attempts += 1
                cause = (f"exceeded wall-clock deadline "
                         f"({config.wall_timeout:.1f}s)")
                if state.attempts >= config.max_attempts:
                    span(state, now, "quarantined", cause)
                    quarantine(state, "timeout", cause, None)
                else:
                    span(state, now, "timeout", cause)
                    state.eligible_at = now + config.backoff.delay(
                        state.attempts)
                    isolate.append(index)  # retried solo: no collateral
            for index in collateral:
                span(states[index], now, "retried",
                     "pool killed for a timed-out neighbour")
                states[index].eligible_at = now
                pending.appendleft(index)
            if outcome.aborted:
                break
            if outcome.pool_breaks + 1 > budget:
                outcome.budget_exhausted = True
                outcome.aborted = True
                break
            respawn()
    finally:
        # Hard kill on every exit path: a clean sweep has idle workers
        # (nothing to lose), an aborted or interrupted one must not
        # linger waiting for a hung point.
        _kill_pool(pool)
    return outcome
