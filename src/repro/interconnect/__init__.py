"""Memory interconnect."""

from repro.interconnect.bus import Interconnect

__all__ = ["Interconnect"]
