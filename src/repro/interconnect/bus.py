"""Memory interconnect between the LLC and the memory controllers.

A constant-latency, order-preserving link: packets are delivered to the
owning controller (by channel interleave) ``hop_cycles`` after issue, one
per cycle, in *grant* order.  Order preservation models the FIFO write
buffer the paper relies on ("the caches' FIFO write buffer ensures that
the writebacks reach the MC before the MCLAZY packet", §III-B1).

Grant order is decided by a same-cycle arbiter, not by the order in
which components happened to call :meth:`Interconnect.send` within a
cycle: all packets issued in one cycle are collected and granted link
slots in a canonical (packet-type, address, requestor) order, with
writebacks ranked ahead of the control packets they must precede and
reads last.  Callback dispatch order among equal-timestamp events is
explicitly *not* part of the simulator's semantics (it is permuted by
the ``REPRO_TIE_ORDER`` sanitizer, :mod:`repro.analysis.simsan`), and
the interconnect is the rendezvous where independently-scheduled
components meet — exactly the seam the sharded-engine rewrite needs to
keep deterministic.  The arbiter runs in the engine's late dispatch
phase so it observes every same-cycle send under any tie-break.

Control packets (MCLAZY / MCFREE) are *broadcast*: every controller must
update its CTT replica.  The shared CTT object makes the replicas
trivially consistent; the broadcast is charged as latency and counted in
controller stats.
"""

from __future__ import annotations

from typing import List

from repro.common import params
from repro.memctrl.controller import MemoryController
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.shard import shared
from repro.sim.stats import StatGroup

#: Event labels by packet type, prebuilt: send() runs once per packet and
#: an f-string per delivery showed up in the exhibit profiles.
_DELIVER_LABEL = {pt: f"xbar-{pt.value}" for pt in PacketType}
_DUP_LABEL = {pt: f"xbar-dup-{pt.value}" for pt in PacketType}

#: Canonical same-cycle grant order.  Writebacks first (they must reach
#: the MC before any control packet issued the same cycle observes the
#: lines), then CTT control traffic, reads last so a read racing a
#: same-cycle writeback to the same line sees the written data — the
#: FIFO-write-buffer semantics, made independent of callback order.
_TYPE_RANK = {
    PacketType.WRITE: 0,
    PacketType.MCLAZY: 1,
    PacketType.MCFREE: 2,
    PacketType.CTT_UPDATE: 3,
    PacketType.INMEM_COPY: 4,
    PacketType.READ: 5,
}


@shared
class Interconnect:
    """Routes packets from the cache side to memory controllers."""

    def __init__(self, sim: Simulator, controllers: List[MemoryController],
                 stats: StatGroup,
                 hop_cycles: int = params.INTERCONNECT_HOP_CYCLES):
        self.sim = sim
        self.controllers = controllers
        self.hop_cycles = hop_cycles
        self.stats = stats
        self._packets = stats.counter("packets", "packets transported")
        self._broadcasts = stats.counter("broadcasts", "control broadcasts")
        self._last_delivery = 0
        # Same-cycle arbitration: packets sent during cycle N accumulate
        # here and are granted link slots by one late-phase event at N.
        self._batch: List[Packet] = []
        self._batch_cycle = -1
        # Optional fault injection (repro.faults.injector): called per
        # packet, returns (extra_delay, duplicate) or None.  Delays model
        # CRC retransmission on a lossy link — the link protocol retries
        # *in order*, so the perturbed delivery still advances the FIFO
        # horizon and ordering is preserved.
        self.fault_hook = None

    def send(self, pkt: Packet) -> None:
        """Queue ``pkt`` for this cycle's arbitration round.

        Deliveries never reorder and never share a cycle: each packet is
        granted a link slot strictly after the previous grant, in the
        canonical order :func:`_grant_key` defines — not in the order
        same-cycle senders happened to run.
        """
        self._packets.inc()
        now = self.sim.now
        if self._batch_cycle != now or not self._batch:
            self._batch_cycle = now
            self._batch = [pkt]
            # Rendezvous phase: fires after every same-cycle send —
            # including sends from phase-1 component arbiters like the
            # core's issue pump — whatever tie-break is installed (see
            # repro.sim.engine).
            self.sim.schedule(0, self._arbitrate, label="xbar-arb", phase=2)
        else:
            self._batch.append(pkt)

    @staticmethod
    def _grant_key(pkt: Packet):
        return (_TYPE_RANK[pkt.ptype], pkt.addr, pkt.requestor,
                pkt.is_bounce, pkt.is_prefetch)

    def _arbitrate(self) -> None:
        """Grant link slots to every packet issued this cycle."""
        batch, self._batch = self._batch, []
        if len(batch) > 1:
            # Stable sort: same-key packets (e.g. two writes of the same
            # line from one burst) keep their issue order.
            batch.sort(key=self._grant_key)
        for pkt in batch:
            self._deliver(pkt)

    def _deliver(self, pkt: Packet) -> None:
        when = max(self.sim.now + self.hop_cycles, self._last_delivery + 1)
        duplicate = False
        if self.fault_hook is not None:
            fault = self.fault_hook(pkt)
            if fault is not None:
                extra_delay, duplicate = fault
                when += extra_delay

        if pkt.ptype is PacketType.INMEM_COPY:
            # In-DRAM copies fan out like control broadcasts, but each
            # controller executes a *share* of the work (the destination
            # lines its channel owns), so delivery is a scatter-join:
            # one child packet per controller, one link slot each, and
            # the parent completes when the last child does.  No
            # link-replay duplication — children are created here, and
            # a replayed copy would only re-apply identical bytes.
            self._deliver_inmem(pkt, when)
            return
        if pkt.ptype in (PacketType.MCLAZY, PacketType.MCFREE):
            # Broadcast: all CTT replicas observe it; the controller that
            # owns the (first line of the) destination performs the shared
            # mutation and acks the packet.  The broadcast latency is part
            # of the FIFO horizon: a read issued just after an MCLAZY must
            # observe the CTT update, or it would return the destination
            # line's stale pre-copy contents and cache them past the
            # hierarchy's invalidation epoch.
            self._broadcasts.inc()
            when += params.BROADCAST_CYCLES
        self._last_delivery = when

        owner = self._owner(pkt.addr)
        self.sim.schedule_at(when, lambda: owner.receive(pkt),
                             label=_DELIVER_LABEL[pkt.ptype])
        if duplicate:
            # Link replay: the same packet arrives a second time, still in
            # order (the horizon advances past it).  READ/WRITE handling
            # is idempotent, so the replica only costs bandwidth.
            self._last_delivery = when + 1
            self.sim.schedule_at(when + 1, lambda: owner.receive(pkt),
                                 label=_DUP_LABEL[pkt.ptype])

    def _deliver_inmem(self, pkt: Packet, when: int) -> None:
        self._broadcasts.inc()
        when += params.BROADCAST_CYCLES
        self._last_delivery = when + len(self.controllers) - 1
        state = {"left": len(self.controllers)}

        def _child_done(_child: Packet) -> None:
            state["left"] -= 1
            if state["left"] == 0:
                pkt.complete(self.sim.now)

        label = _DELIVER_LABEL[pkt.ptype]
        for slot, mc in enumerate(self.controllers):
            child = Packet(PacketType.INMEM_COPY, pkt.addr, pkt.size,
                           src_addr=pkt.src_addr, on_complete=_child_done,
                           requestor=pkt.requestor)
            child.copy_mode = pkt.copy_mode
            self.sim.schedule_at(when + slot,
                                 lambda mc=mc, child=child: mc.receive(child),
                                 label=label)

    def _owner(self, addr: int) -> MemoryController:
        channel = self.controllers[0].address_map.channel_of(addr)
        return self.controllers[channel % len(self.controllers)]
