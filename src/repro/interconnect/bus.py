"""Memory interconnect between the LLC and the memory controllers.

A constant-latency, order-preserving link: packets are delivered to the
owning controller (by channel interleave) exactly ``hop_cycles`` after
issue, in issue order.  Order preservation models the FIFO write buffer
the paper relies on ("the caches' FIFO write buffer ensures that the
writebacks reach the MC before the MCLAZY packet", §III-B1).

Control packets (MCLAZY / MCFREE) are *broadcast*: every controller must
update its CTT replica.  The shared CTT object makes the replicas
trivially consistent; the broadcast is charged as latency and counted in
controller stats.
"""

from __future__ import annotations

from typing import List

from repro.common import params
from repro.memctrl.controller import MemoryController
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.stats import StatGroup

#: Event labels by packet type, prebuilt: send() runs once per packet and
#: an f-string per delivery showed up in the exhibit profiles.
_DELIVER_LABEL = {pt: f"xbar-{pt.value}" for pt in PacketType}
_DUP_LABEL = {pt: f"xbar-dup-{pt.value}" for pt in PacketType}


class Interconnect:
    """Routes packets from the cache side to memory controllers."""

    def __init__(self, sim: Simulator, controllers: List[MemoryController],
                 stats: StatGroup,
                 hop_cycles: int = params.INTERCONNECT_HOP_CYCLES):
        self.sim = sim
        self.controllers = controllers
        self.hop_cycles = hop_cycles
        self.stats = stats
        self._packets = stats.counter("packets", "packets transported")
        self._broadcasts = stats.counter("broadcasts", "control broadcasts")
        self._last_delivery = 0
        # Optional fault injection (repro.faults.injector): called per
        # packet, returns (extra_delay, duplicate) or None.  Delays model
        # CRC retransmission on a lossy link — the link protocol retries
        # *in order*, so the perturbed delivery still advances the FIFO
        # horizon and ordering is preserved.
        self.fault_hook = None

    def send(self, pkt: Packet) -> None:
        """Deliver ``pkt`` to its controller after the hop latency.

        Deliveries never reorder: each is scheduled no earlier than the
        previous one.
        """
        self._packets.inc()
        when = max(self.sim.now + self.hop_cycles, self._last_delivery)
        duplicate = False
        if self.fault_hook is not None:
            fault = self.fault_hook(pkt)
            if fault is not None:
                extra_delay, duplicate = fault
                when += extra_delay

        if pkt.ptype in (PacketType.MCLAZY, PacketType.MCFREE):
            # Broadcast: all CTT replicas observe it; the controller that
            # owns the (first line of the) destination performs the shared
            # mutation and acks the packet.  The broadcast latency is part
            # of the FIFO horizon: a read issued just after an MCLAZY must
            # observe the CTT update, or it would return the destination
            # line's stale pre-copy contents and cache them past the
            # hierarchy's invalidation epoch.
            self._broadcasts.inc()
            when += params.BROADCAST_CYCLES
        self._last_delivery = when

        owner = self._owner(pkt.addr)
        self.sim.schedule_at(when, lambda: owner.receive(pkt),
                             label=_DELIVER_LABEL[pkt.ptype])
        if duplicate:
            # Link replay: the same packet arrives a second time, still in
            # order (the horizon advances past it).  READ/WRITE handling
            # is idempotent, so the replica only costs bandwidth.
            self._last_delivery = when + 1
            self.sim.schedule_at(when + 1, lambda: owner.receive(pkt),
                                 label=_DUP_LABEL[pkt.ptype])

    def _owner(self, addr: int) -> MemoryController:
        channel = self.controllers[0].address_map.channel_of(addr)
        return self.controllers[channel % len(self.controllers)]
