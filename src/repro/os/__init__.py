"""Operating-system substrate: virtual memory, fork/COW, pipes."""

from repro.os.pipes import Pipe
from repro.os.vm import AddressSpace, CowFault, OperatingSystem, PageTableEntry

__all__ = ["OperatingSystem", "AddressSpace", "PageTableEntry", "CowFault",
           "Pipe"]
