"""Linux pipe model with user↔kernel buffer copies (Fig. 19).

A pipe transfer costs two syscalls and two copies: ``pipe_write`` copies
the user buffer into the kernel's circular pipe buffer, and ``pipe_read``
copies it back out into the reader's buffer.  The paper modifies
``pipe_write`` / ``pipe_read`` to use lazy copies instead; here the same
substitution is made by constructing the :class:`Pipe` with a
:class:`~repro.sw.engine.LazyEngine` (or any other
:class:`~repro.sw.engine.CopyEngine`).

For small transfers the syscall cost dominates, so (MC)² helps little;
for larger transfers it roughly doubles throughput by eliding both
copies (§V-B).
"""

from __future__ import annotations

from typing import Iterator

from repro.common import params
from repro.common.errors import SimulationError
from repro.isa import ops
from repro.isa.ops import Op
from repro.sw.engine import CopyEngine


class Pipe:
    """A kernel pipe: fixed-size circular buffer in kernel memory."""

    def __init__(self, system, engine: CopyEngine,
                 buffer_size: int = params.PIPE_BUFFER_SIZE):
        self.system = system
        self.engine = engine
        self.buffer_size = buffer_size
        self.kernel_buffer = system.alloc(buffer_size)
        self._head = 0       # next write offset
        self._tail = 0       # next read offset
        self._fill = 0
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def available(self) -> int:
        """Bytes currently buffered in the kernel."""
        return self._fill

    @property
    def space(self) -> int:
        """Free space in the kernel buffer."""
        return self.buffer_size - self._fill

    # ------------------------------------------------------------- write
    def write_ops(self, user_addr: int, size: int) -> Iterator[Op]:
        """``write(pipefd, buf, size)``: syscall + copy into the kernel.

        The caller must not exceed :attr:`space` (a real kernel would
        block; the simulated workloads alternate write/read so the
        buffer never overflows).
        """
        if size > self.space:
            raise SimulationError("pipe buffer overflow; drain it first")
        # Syscall entry plus pipe_lock/wakeup of the reader.
        yield ops.compute(params.SYSCALL_CYCLES + params.PIPE_WAKEUP_CYCLES)
        pos = 0
        while pos < size:
            chunk = min(size - pos, self.buffer_size - self._head)
            yield from self.engine.copy_ops(
                self.kernel_buffer + self._head, user_addr + pos, chunk)
            self._head = (self._head + chunk) % self.buffer_size
            pos += chunk
        self._fill += size
        self.bytes_written += size

    # -------------------------------------------------------------- read
    def read_ops(self, user_addr: int, size: int) -> Iterator[Op]:
        """``read(pipefd, buf, size)``: syscall + copy out of the kernel."""
        if size > self._fill:
            raise SimulationError("pipe underflow; write before reading")
        # Syscall entry plus pipe_lock/schedule-in of the reader.
        yield ops.compute(params.SYSCALL_CYCLES + params.PIPE_WAKEUP_CYCLES)
        pos = 0
        while pos < size:
            chunk = min(size - pos, self.buffer_size - self._tail)
            # Kernel-buffer bytes the reader consumes count as accesses
            # of copied data, so route them through the engine.
            yield from self.engine.copy_ops(
                user_addr + pos, self.kernel_buffer + self._tail, chunk)
            self._tail = (self._tail + chunk) % self.buffer_size
            pos += chunk
        self._fill -= size
        self.bytes_read += size

    def transfer_ops(self, src_addr: int, dst_addr: int,
                     size: int) -> Iterator[Op]:
        """One producer→consumer round trip through the pipe."""
        yield from self.write_ops(src_addr, size)
        yield from self.read_ops(dst_addr, size)
