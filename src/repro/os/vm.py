"""Virtual memory substrate: address spaces, fork, copy-on-write.

A deliberately lightweight model of the Linux mechanisms the paper's OS
experiments exercise (§V-B "Concurrent snapshots with huge pages"):

* an :class:`AddressSpace` maps virtual pages (4KB or 2MB huge pages) to
  physical frames with writable/COW bits and frame reference counts;
* :meth:`OperatingSystem.fork` clones an address space by copying PTEs
  and marking both sides copy-on-write (charging the per-PTE cost that
  makes huge pages attractive — 512× fewer PTEs);
* a write to a COW page raises :class:`CowFault`; the caller resolves it
  with :meth:`OperatingSystem.begin_cow_fault` /
  :meth:`~OperatingSystem.complete_cow_fault`, emitting the page-copy ops
  through whichever :class:`~repro.sw.engine.CopyEngine` is under test —
  the native kernel copies eagerly, the modified kernel uses ``MCLAZY``.

Translation is explicit (workload generators call :meth:`translate`)
rather than interposed on every op, keeping the hot simulation path
simple; protection semantics are still enforced at translation time,
mirroring the paper's argument that (MC)² needs no protection changes
because the MMU checks happen before physical addresses reach the MC
(§III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common import params
from repro.common.errors import AddressError, ProtectionFault
from repro.common.units import HUGE_PAGE_SIZE, PAGE_SIZE, align_down
from repro.isa import ops
from repro.isa.ops import Op


class CowFault(Exception):
    """A write touched a copy-on-write page; carries the faulting VA."""

    def __init__(self, vaddr: int):
        super().__init__(f"COW fault at {vaddr:#x}")
        self.vaddr = vaddr


@dataclass
class PageTableEntry:
    """One mapping from a virtual page to a physical frame."""

    frame: int           # physical base address
    writable: bool
    cow: bool = False


class AddressSpace:
    """Per-process page table over one page size."""

    def __init__(self, os_: "OperatingSystem",
                 page_size: int = PAGE_SIZE):
        if page_size not in (PAGE_SIZE, HUGE_PAGE_SIZE):
            raise AddressError(f"unsupported page size {page_size}")
        # Deliberately no serial id (see sim.packet): a module-global
        # counter is shared mutable state across forked sweep workers.
        self.os = os_
        self.page_size = page_size
        self.ptes: Dict[int, PageTableEntry] = {}

    # ------------------------------------------------------------ mapping
    def _vpage(self, vaddr: int) -> int:
        return align_down(vaddr, self.page_size)

    def map_region(self, vaddr: int, size: int,
                   writable: bool = True) -> None:
        """Allocate and map physical frames for [vaddr, vaddr+size)."""
        page = self._vpage(vaddr)
        end = vaddr + size
        while page < end:
            if page not in self.ptes:
                frame = self.os.alloc_frame(self.page_size)
                self.ptes[page] = PageTableEntry(frame, writable)
            page += self.page_size

    def unmap_region(self, vaddr: int, size: int) -> None:
        """Drop mappings; frames are released when refcounts hit zero."""
        page = self._vpage(vaddr)
        end = vaddr + size
        while page < end:
            pte = self.ptes.pop(page, None)
            if pte is not None:
                self.os.release_frame(pte.frame)
            page += self.page_size

    # -------------------------------------------------------- translation
    def translate(self, vaddr: int, write: bool = False) -> int:
        """VA → PA; raises :class:`CowFault` on a COW write,
        :class:`ProtectionFault` on other violations."""
        pte = self.ptes.get(self._vpage(vaddr))
        if pte is None:
            raise ProtectionFault(f"unmapped address {vaddr:#x}")
        if write:
            if pte.cow:
                raise CowFault(vaddr)
            if not pte.writable:
                raise ProtectionFault(f"write to read-only page {vaddr:#x}")
        return pte.frame + (vaddr - self._vpage(vaddr))

    def translate_range(self, vaddr: int, size: int,
                        write: bool = False) -> List[Tuple[int, int]]:
        """Translate a range into (paddr, length) page-bounded pieces."""
        out: List[Tuple[int, int]] = []
        pos = vaddr
        end = vaddr + size
        while pos < end:
            page_end = self._vpage(pos) + self.page_size
            take = min(page_end, end) - pos
            out.append((self.translate(pos, write), take))
            pos += take
        return out


class OperatingSystem:
    """Frame allocator + process table + fork/COW machinery."""

    def __init__(self, system):
        self.system = system
        self._refcounts: Dict[int, int] = {}
        self.spaces: List[AddressSpace] = []
        self.cow_faults = 0
        self.forks = 0

    # ------------------------------------------------------------- frames
    def alloc_frame(self, page_size: int) -> int:
        frame = self.system.alloc(page_size, align=page_size)
        self._refcounts[frame] = 1
        return frame

    def share_frame(self, frame: int) -> None:
        self._refcounts[frame] = self._refcounts.get(frame, 1) + 1

    def release_frame(self, frame: int) -> None:
        count = self._refcounts.get(frame, 1) - 1
        if count <= 0:
            self._refcounts.pop(frame, None)
        else:
            self._refcounts[frame] = count

    def create_space(self, page_size: int = PAGE_SIZE) -> AddressSpace:
        """A new empty address space."""
        space = AddressSpace(self, page_size)
        self.spaces.append(space)
        return space

    # --------------------------------------------------------------- fork
    def fork(self, parent: AddressSpace) -> Tuple[AddressSpace, Iterator[Op]]:
        """Clone ``parent``; both sides become COW.

        Returns the child space and the op fragment charging the fork
        cost (page-table copy: base + per-PTE work — the reason huge
        pages cut direct fork cost by ~512×).
        """
        self.forks += 1
        child = self.create_space(parent.page_size)
        for vpage, pte in parent.ptes.items():
            pte.cow = True
            self.share_frame(pte.frame)
            child.ptes[vpage] = PageTableEntry(pte.frame, pte.writable,
                                               cow=True)
        cost = (params.FORK_BASE_CYCLES
                + len(parent.ptes) * params.FORK_PER_PTE_CYCLES)
        return child, iter([ops.compute(cost)])

    # ----------------------------------------------------------- COW path
    def begin_cow_fault(self, space: AddressSpace,
                        vaddr: int) -> Tuple[int, int]:
        """Start servicing a COW fault.

        Allocates the private frame and returns ``(old_frame,
        new_frame)``.  The caller emits the page copy (eager or lazy)
        plus :data:`params.PAGE_FAULT_CYCLES` of kernel work, then calls
        :meth:`complete_cow_fault`.
        """
        self.cow_faults += 1
        vpage = space._vpage(vaddr)
        pte = space.ptes.get(vpage)
        if pte is None or not pte.cow:
            raise ProtectionFault(f"no COW fault pending at {vaddr:#x}")
        old_frame = pte.frame
        if self._refcounts.get(old_frame, 1) <= 1:
            # Sole owner: just clear the COW bit, no copy needed.
            pte.cow = False
            return old_frame, old_frame
        new_frame = self.alloc_frame(space.page_size)
        return old_frame, new_frame

    def complete_cow_fault(self, space: AddressSpace, vaddr: int,
                           new_frame: int) -> None:
        """Install the private frame after the copy ops have been issued."""
        vpage = space._vpage(vaddr)
        pte = space.ptes[vpage]
        if pte.frame != new_frame:
            self.release_frame(pte.frame)
            pte.frame = new_frame
        pte.cow = False

    def cow_store_ops(self, space: AddressSpace, vaddr: int, size: int,
                      engine=None, data: Optional[bytes] = None,
                      on_retire=None) -> Iterator[Op]:
        """A store through the VM layer, servicing a COW fault if raised.

        This is the convenience path the Fig. 18 workload uses: kernel
        entry cost, page copy through ``engine``, PTE fixup, then the
        user store.  ``engine`` defaults to the machine's configured
        copy backend (``SystemConfig.copy_backend``), so the kernel COW
        path dispatches through :mod:`repro.copyengine` like userspace
        ``memcpy`` does.
        """
        if engine is None:
            engine = self.system.copy_backend()
        try:
            paddr = space.translate(vaddr, write=True)
        except CowFault:
            yield ops.compute(params.PAGE_FAULT_CYCLES)
            old_frame, new_frame = self.begin_cow_fault(space, vaddr)
            if new_frame != old_frame:
                yield from engine.copy_ops(new_frame, old_frame,
                                           space.page_size)
            self.complete_cow_fault(space, vaddr, new_frame)
            paddr = space.translate(vaddr, write=True)
        yield from engine.write_ops(paddr, size, data=data,
                                    on_retire=on_retire)
