"""Pluggable copy-engine backends (the lazy-vs-PIM design space).

Five registered backends behind one interface:

========== ==========================================================
``eager``   native software ``memcpy`` loop (paper baseline)
``mclazy``  (MC)² lazy MemCopy at the memory controller (CTT/BPQ)
``zio``     zIO page-granularity copy elision (copy-on-access faults)
``rowclone`` in-DRAM subarray row copy (FPM / PSM, RowClone)
``mirror``  In-Memory Mirroring (parallel clone, no read phase)
========== ==========================================================

Select one with ``SystemConfig(copy_backend=...)`` and build it with
``system.copy_backend()``, or construct directly via
:func:`make_backend`.  See ``docs/COPYENGINE.md`` for the interface
contract and the measured crossover study.
"""

from repro.copyengine.base import CopyBackend
from repro.copyengine.registry import (
    ALIASES,
    BACKENDS,
    backend_names,
    canonical_name,
    known_backend,
    make_backend,
    needs_ctt,
    register_backend,
)
from repro.copyengine.software import EagerBackend, McLazyBackend, ZioBackend
from repro.copyengine.indram import (
    InMemCopyBackend,
    MirrorBackend,
    RowCloneBackend,
)

__all__ = [
    "ALIASES",
    "BACKENDS",
    "CopyBackend",
    "EagerBackend",
    "InMemCopyBackend",
    "McLazyBackend",
    "MirrorBackend",
    "RowCloneBackend",
    "ZioBackend",
    "backend_names",
    "canonical_name",
    "known_backend",
    "make_backend",
    "needs_ctt",
    "register_backend",
]
