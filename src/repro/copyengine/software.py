"""Software copy backends: eager loop, (MC)² lazy wrapper, zIO elision.

These wrap the existing engines in :mod:`repro.sw.engine` and
:mod:`repro.zio.engine` rather than reimplementing them, so the op
streams they emit are *identical* to the pre-refactor engines — the
``mclazy`` backend is pinned byte-for-byte to the golden trace by
``tests/integration/test_golden_trace.py``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.units import PAGE_SIZE, align_down
from repro.copyengine.base import CopyBackend
from repro.copyengine.registry import register_backend
from repro.isa.ops import Op
from repro.sim.shard import shard_local
from repro.sw.engine import LazyEngine
from repro.sw.memcpy import memcpy_ops
from repro.zio.engine import ZioEngine


@register_backend
@shard_local(domain="cpu")
class EagerBackend(CopyBackend):
    """The native software ``memcpy`` loop (the paper's baseline)."""

    name = "eager"

    def _issue_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        self._outcome("copied")
        yield from memcpy_ops(self.system, dst, src, size)


@register_backend
@shard_local(domain="cpu")
class McLazyBackend(CopyBackend):
    """(MC)² lazy MemCopy: delegates to the existing CTT/BPQ machinery.

    Composition keeps the emitted op stream identical to
    :class:`repro.sw.engine.LazyEngine` — no marker ops, no extra
    fences — which is what keeps the golden trace byte-identical.
    """

    name = "mclazy"

    @classmethod
    def config_kwargs(cls, config) -> dict:
        return {"min_lazy": getattr(config, "copy_min_lazy", 0)}

    def __init__(self, system, min_lazy: int = 0,
                 page_size: Optional[int] = None,
                 clwb_sources: bool = True):
        super().__init__(system)
        self._inner = LazyEngine(system, min_lazy=min_lazy,
                                 page_size=page_size,
                                 clwb_sources=clwb_sources)
        self.min_lazy = min_lazy

    def _issue_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        if size < self.min_lazy:
            self._outcome("copied")
            self._fallback_bytes.inc(size)
        else:
            self._outcome("deferred")
        yield from self._inner.copy_ops(dst, src, size)

    def _free_ops(self, addr: int, size: int) -> Iterator[Op]:
        return self._inner.free_ops(addr, size)

    def tracked_bytes(self) -> int:
        ctt = getattr(self.system, "ctt", None)
        return ctt.tracked_bytes() if ctt is not None else 0

    # No _resolve_ops override: deferred copies live in the CTT, and
    # System.read_memory resolves through it (bounce semantics), so
    # final memory contents are already observable.


@register_backend
@shard_local(domain="cpu")
class ZioBackend(CopyBackend):
    """zIO page-granularity copy elision with copy-on-access faults."""

    name = "zio"

    @classmethod
    def config_kwargs(cls, config) -> dict:
        kwargs = {}
        min_elision = getattr(config, "zio_min_elision", None)
        if min_elision is not None:
            kwargs["min_elision"] = min_elision
        return kwargs

    def __init__(self, system, **kwargs):
        super().__init__(system)
        self._inner = ZioEngine(system, **kwargs)

    def _issue_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        before = self._inner.elisions
        yield from self._inner.copy_ops(dst, src, size)
        if self._inner.elisions > before:
            self._outcome("elided")
        else:
            self._outcome("copied")
            self._fallback_bytes.inc(size)

    def _free_ops(self, addr: int, size: int) -> Iterator[Op]:
        return self._inner.free_ops(addr, size)

    # Faults interpose on data accesses, so reads/writes of (possibly
    # elided) data must route through the inner engine.
    def read_ops(self, addr: int, size: int = 8, blocking: bool = False,
                 on_retire=None) -> Iterator[Op]:
        return self._inner.read_ops(addr, size, blocking=blocking,
                                    on_retire=on_retire)

    def write_ops(self, addr: int, size: int = 8,
                  data: Optional[bytes] = None, on_retire=None,
                  nontemporal: bool = False) -> Iterator[Op]:
        return self._inner.write_ops(addr, size, data=data,
                                     on_retire=on_retire,
                                     nontemporal=nontemporal)

    def tracked_bytes(self) -> int:
        return self._inner.elided_pages() * PAGE_SIZE

    def _resolve_ops(self, addr: int, size: int) -> Iterator[Op]:
        # The elision map is engine state the memory system cannot see:
        # fault every still-elided page in so final bytes land in DRAM.
        for page in range(align_down(addr, PAGE_SIZE), addr + size,
                          PAGE_SIZE):
            if self._inner.is_elided(page):
                yield from self._inner.read_ops(page, 8)
