"""Backend registry: name -> :class:`CopyBackend` class, plus aliases.

Registration happens at import time only (decorators run when
``repro.copyengine`` is first imported, never on a sim path), so forked
sweep workers and cached sim points all see the same finished registry —
the same discipline :mod:`repro.sim.shard` uses for its port table.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.common.errors import ConfigError
from repro.copyengine.base import CopyBackend

#: Canonical backend name -> class.
BACKENDS: Dict[str, Type[CopyBackend]] = {}

#: Historical / convenience spellings accepted everywhere a backend
#: name is (SystemConfig.copy_backend, make_engine, example CLIs).
ALIASES: Dict[str, str] = {
    "memcpy": "eager",
    "baseline": "eager",
    "native": "eager",
    "mcsquare": "mclazy",
    "mc2": "mclazy",
    "lazy": "mclazy",
}


def register_backend(cls: Type[CopyBackend]) -> Type[CopyBackend]:
    """Class decorator adding ``cls`` to the registry under its name."""
    # Import-time-only registration; see module docstring.
    BACKENDS[cls.name] = cls
    return cls


def canonical_name(name: str) -> str:
    """Resolve aliases to the registered backend name."""
    return ALIASES.get(name, name)


def known_backend(name: str) -> bool:
    """True when ``name`` (or an alias of it) is registered."""
    # Import-time-frozen lookup table; see module docstring.
    return canonical_name(name) in BACKENDS  # noqa: MC2501


def backend_names() -> List[str]:
    """Canonical names of every registered backend, sorted."""
    return sorted(BACKENDS)  # noqa: MC2501


def needs_ctt(name: str) -> bool:
    """True when the backend requires the (MC)² controller machinery."""
    return canonical_name(name) == "mclazy"


def make_backend(name: str, system, **overrides) -> CopyBackend:
    """Build the backend called ``name`` for ``system``.

    Per-backend constructor defaults come from ``system.config`` (via
    each class's ``config_kwargs``); keyword ``overrides`` win over
    those.  Raises :class:`ConfigError` for unknown names and for
    backends whose hardware the machine was built without.
    """
    canonical = canonical_name(name)
    cls = BACKENDS.get(canonical)  # noqa: MC2501
    if cls is None:
        raise ConfigError(
            f"unknown copy backend {name!r}; known backends: "
            f"{', '.join(backend_names())} "
            f"(aliases: {', '.join(sorted(ALIASES))})")
    if needs_ctt(canonical) and getattr(system, "ctt", None) is None:
        raise ConfigError(
            "the mclazy backend needs the (MC)² controller: build the "
            "system with mcsquare_enabled=True")
    kwargs = cls.config_kwargs(system.config)
    kwargs.update(overrides)
    return cls(system, **kwargs)
