"""In-DRAM copy backends: RowClone and In-Memory Mirroring.

Both offload bulk copies to the DRAM device itself via the
``INMEM_COPY`` op (:mod:`repro.isa.ops`): the hierarchy flushes dirty
source lines and invalidates cached destination lines (the LazyPIM
coherence boundary), the interconnect scatters the descriptor to every
memory controller, and each controller runs its channel's share as
row-copy jobs on :meth:`repro.dram.device.DramChannel.row_copy` —
RowClone FPM for full same-subarray row pairs, PSM's serial per-line
transfer otherwise, or the mirroring clone (no read phase) for the
``mirror`` backend.

Eligibility: an in-DRAM copy needs every (source, destination) line
pair on the same channel.  With cacheline-interleaved channels that
means the copy offset must be congruent modulo ``channels`` cachelines
(and the buffers laid out line-congruently); anything else falls back
to the eager software loop, which is exactly the *locality* axis of the
crossover figure.  Sub-line fringes at either end always copy eagerly,
mirroring ``memcpy_lazy``'s fringe handling.
"""

from __future__ import annotations

from typing import Iterator

from repro.common import params
from repro.common.units import CACHELINE_SIZE, align_rem
from repro.copyengine.base import CopyBackend
from repro.copyengine.registry import register_backend
from repro.isa import ops
from repro.isa.ops import Op
from repro.sim.shard import shard_local
from repro.sw.memcpy import memcpy_ops


@shard_local(domain="cpu")
class InMemCopyBackend(CopyBackend):
    """Common machinery for the rowclone / mirror backends."""

    #: DRAM mechanism requested in the INMEM_COPY descriptor.
    mode = "rowclone"

    def __init__(self, system):
        super().__init__(system)
        self._cloned_lines = self.stats.counter(
            "cloned_lines", "cachelines offloaded to in-DRAM copy")
        self._channels = system.address_map.channels

    def eligible(self, dst: int, src: int, size: int) -> bool:
        """True when the bulk of this copy can run in DRAM."""
        if dst % CACHELINE_SIZE != src % CACHELINE_SIZE:
            return False  # line-incongruent layouts can't pair rows
        if ((src - dst) // CACHELINE_SIZE) % self._channels:
            return False  # line pairs would straddle channels
        return size >= CACHELINE_SIZE

    def _issue_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        if not self.eligible(dst, src, size):
            self._outcome("fallback")
            self._fallback_bytes.inc(size)
            yield from memcpy_ops(self.system, dst, src, size)
            return
        head = min(align_rem(dst, CACHELINE_SIZE), size)
        if head:
            self._fallback_bytes.inc(head)
            yield from memcpy_ops(self.system, dst, src, head)
            dst += head
            src += head
            size -= head
        bulk = size & ~(CACHELINE_SIZE - 1)
        if bulk:
            self._outcome("cloned")
            self._cloned_lines.inc(bulk // CACHELINE_SIZE)
            # LazyPIM boundary: flush/invalidate bookkeeping on the
            # issuing core (the hierarchy generates the actual
            # writebacks when the descriptor passes through it).
            yield from self.coherence_ops(dst, src, bulk)
            yield ops.compute(params.MCLAZY_SETUP_CYCLES)
            yield ops.inmem_copy(dst, src, bulk, mode=self.mode)
            # The copy runs asynchronously in DRAM; the fence makes the
            # wrapper's completion mean "clone done", matching
            # memcpy_lazy's contract.
            yield ops.mfence()
        rest = size - bulk
        if rest:
            self._fallback_bytes.inc(rest)
            yield from memcpy_ops(self.system, dst + bulk, src + bulk, rest)

    def coherence_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        lines = size // CACHELINE_SIZE
        yield ops.compute(params.INMEM_COHERENCE_BASE_CYCLES
                          + lines * params.INMEM_COHERENCE_PER_LINE_CYCLES)


@register_backend
@shard_local(domain="cpu")
class RowCloneBackend(InMemCopyBackend):
    """RowClone: FPM same-subarray row copies, PSM serial otherwise."""

    name = "rowclone"
    mode = "rowclone"


@register_backend
@shard_local(domain="cpu")
class MirrorBackend(InMemCopyBackend):
    """In-Memory Mirroring: row cloning without the read phase."""

    name = "mirror"
    mode = "mirror"
