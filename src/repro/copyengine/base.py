"""The pluggable copy-backend contract.

A :class:`CopyBackend` is a :class:`repro.sw.engine.CopyEngine` with a
standard observable surface and a four-hook lifecycle, so every copy
mechanism the crossover study compares — the eager software loop, (MC)²
lazy tracking, zIO page elision, and the in-DRAM RowClone / mirroring
models — plugs into the same workloads, sweeps, and figures:

* **issue** (:meth:`CopyBackend._issue_ops`) — emit the µops that
  perform (or register, or elide) one copy.  This is the only hook a
  backend must implement.
* **track** (:meth:`CopyBackend.tracked_bytes`) — how many bytes of
  copies the backend is currently *deferring* (CTT-tracked bytes for
  ``mclazy``, elided pages for ``zio``, always 0 for mechanisms that
  finish copies before returning).
* **resolve** (:meth:`CopyBackend.resolve_ops`) — force deferred state
  to become ordinary memory so a functional comparison (or a checkpoint)
  sees final bytes.  ``mclazy`` needs nothing here because
  ``System.read_memory`` is CTT-aware; ``zio`` must fault its elided
  pages in because the elision map lives in the engine, invisible to
  the memory system.
* **coherence** (:meth:`CopyBackend.coherence_ops`) — the CPU-boundary
  cost a mechanism pays before offloading (LazyPIM-style flush +
  invalidate bookkeeping for the in-DRAM backends; free for the
  software mechanisms, whose ops are naturally coherent).

Every backend owns a ``StatGroup`` subtree under
``system.stats["copyengine"][<name>]`` and emits copy-lifecycle spans in
the opt-in ``copyengine`` trace category (off by default, so traced
golden runs stay byte-identical).

Backends run on the core that executes their generated ops, hence the
``cpu`` shard declaration; everything they touch cross-shard goes
through the ops they emit, never by direct mutation.
"""

from __future__ import annotations

from typing import Iterator

from repro.isa.ops import Op
from repro.sim.shard import shard_local
from repro.sw.engine import CopyEngine
from repro.sw.memcpy import memcpy_ops


@shard_local(domain="cpu")
class CopyBackend(CopyEngine):
    """Base class for registered copy backends."""

    name = "backend"

    @classmethod
    def config_kwargs(cls, config) -> dict:
        """Constructor kwargs this backend derives from a SystemConfig.

        The registry's :func:`make_backend` applies these under any
        explicit overrides, so ``SystemConfig`` fields like
        ``copy_min_lazy`` flow to the right backend automatically.
        """
        return {}

    def __init__(self, system):
        super().__init__(system)
        group = system.stats.group("copyengine").group(self.name)
        self.stats = group
        self._copies = group.counter("copies", "copy requests issued")
        self._bytes = group.counter("bytes_requested",
                                    "bytes the workload asked to copy")
        self._fallback_bytes = group.counter(
            "fallback_bytes", "bytes that took the eager software loop")
        self._frees = group.counter("frees", "free hints received")
        self._resolves = group.counter("resolves",
                                       "explicit resolve requests")
        # Instance-local span sequence (a process-global counter would
        # be fork-unsafe across sweep workers, MC2401).
        self._span_seq = 0
        self._last_outcome = "issued"

    # ------------------------------------------------------------ wrapper
    def copy_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        """Count, trace, and delegate one copy to :meth:`_issue_ops`."""
        self._copies.inc()
        self._bytes.inc(size)
        tracer = getattr(self.system, "tracer", None)
        span_id = None
        if tracer is not None and tracer.wants("copyengine"):
            self._span_seq += 1
            span_id = f"ce-{self.name}-{self._span_seq}"
            tracer.span_begin("copyengine", "copyengine",
                              f"copy-{self.name}", span_id,
                              {"dst": hex(dst), "src": hex(src),
                               "size": size})
        self._last_outcome = "issued"
        yield from self._issue_ops(dst, src, size)
        if span_id is not None:
            tracer.span_end("copyengine", span_id,
                            {"outcome": self._last_outcome})

    def free_ops(self, addr: int, size: int) -> Iterator[Op]:
        self._frees.inc()
        return self._free_ops(addr, size)

    def resolve_ops(self, addr: int, size: int) -> Iterator[Op]:
        """Materialize any deferred copy state covering the range."""
        self._resolves.inc()
        return self._resolve_ops(addr, size)

    # -------------------------------------------------------------- hooks
    def _issue_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        """Emit the µops performing one copy (override me)."""
        self._outcome("copied")
        return memcpy_ops(self.system, dst, src, size)

    def _free_ops(self, addr: int, size: int) -> Iterator[Op]:
        return iter(())

    def _resolve_ops(self, addr: int, size: int) -> Iterator[Op]:
        return iter(())

    def coherence_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        """CPU-boundary coherence cost paid before an offloaded copy."""
        return iter(())

    def tracked_bytes(self) -> int:
        """Bytes of copies this backend is currently deferring."""
        return 0

    # ------------------------------------------------------------ helpers
    def _outcome(self, outcome: str) -> None:
        """Record the lifecycle outcome the current copy's span closes
        with (``copied`` / ``deferred`` / ``elided`` / ``cloned`` /
        ``fallback``)."""
        self._last_outcome = outcome
