"""DDR4-style DRAM device timing.

Each channel has a set of banks, each with an open-row register.  An access
costs a device latency that depends on the row-buffer state (hit / closed /
conflict) plus data-burst occupancy of the shared channel data bus.  The
channel bus is modelled as a busy-until resource: requests serialize on it,
which is what produces bandwidth-bound behaviour (Figs 16b/17b/22).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common import params
from repro.dram.address_map import DramLocation
from repro.sim.shard import rendezvous, shard_local
from repro.sim.stats import StatGroup


@shard_local
class Bank:
    """One DRAM bank: tracks the open row and when it is next usable."""

    __slots__ = ("open_row", "ready_at")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at: int = 0


@shard_local
class DramChannel:
    """Timing model of one DRAM channel (one per memory controller)."""

    def __init__(self, stats: StatGroup, banks: int = params.DRAM_BANKS_PER_CHANNEL):
        self.banks: Dict[int, Bank] = {b: Bank() for b in range(banks)}
        self.bus_free_at: int = 0
        self.stats = stats
        self._row_hits = stats.counter("row_hits", "row-buffer hits")
        self._row_misses = stats.counter("row_misses", "closed-row activations")
        self._row_conflicts = stats.counter("row_conflicts", "row-buffer conflicts")
        self._busy_cycles = stats.counter("bus_busy_cycles", "data-bus occupancy")
        self._accesses = stats.counter("accesses", "total device accesses")
        # In-DRAM copy (repro.copyengine rowclone/mirror backends).  Row
        # copies are deliberately *not* counted as accesses: they move
        # data without occupying the external channel bus (except PSM).
        self._copies_fpm = stats.counter(
            "row_copies_fpm", "RowClone fast-parallel-mode row copies")
        self._copies_psm = stats.counter(
            "row_copies_psm", "RowClone pipelined-serial-mode transfers")
        self._copies_mirror = stats.counter(
            "row_copies_mirror", "in-memory-mirroring row clones")
        self._copy_lines = stats.counter(
            "row_copy_lines", "cachelines moved by in-DRAM copies")
        # Optional repro.obs tracer (set by runtime.attach_tracer) and
        # this channel's trace track name.  The "dram" category is a
        # firehose (one event per device access) and is off by default.
        self._trace = None
        self._track = "dram"

    @rendezvous("dram-access")
    def access(self, loc: DramLocation, now: int) -> int:
        """Perform one cacheline access; returns the completion cycle.

        Updates bank open-row state and channel bus occupancy.  ``now`` is
        the cycle the request reaches the device.
        """
        bank = self.banks[loc.bank]
        start = max(now, bank.ready_at)

        if bank.open_row is None:
            device = params.DRAM_ROW_MISS_CYCLES
            occupancy = device  # activation blocks the bank
            self._row_misses.value += 1
            kind = "miss"
        elif bank.open_row == loc.row:
            device = params.DRAM_ROW_HIT_CYCLES
            # Back-to-back CAS to an open row pipeline at tCCD: the bank
            # accepts the next column command after roughly one burst.
            occupancy = params.DRAM_BURST_CYCLES
            self._row_hits.value += 1
            kind = "hit"
        else:
            device = params.DRAM_ROW_CONFLICT_CYCLES
            # FR-FCFS controllers batch same-row requests before
            # switching, amortizing the precharge+activate over several
            # column accesses.  Our in-order bank cannot reorder, so the
            # batching shows up as reduced *occupancy* (throughput) while
            # each conflicting access still pays the full latency.
            occupancy = device // 4
            self._row_conflicts.value += 1
            kind = "conflict"
        bank.open_row = loc.row

        # Banks overlap their device latency; only the 64B data burst
        # serializes on the shared channel data bus.
        data_ready = max(start + device, self.bus_free_at)
        done = data_ready + params.DRAM_BURST_CYCLES
        self.bus_free_at = done
        bank.ready_at = start + occupancy
        self._busy_cycles.value += params.DRAM_BURST_CYCLES
        self._accesses.value += 1
        if self._trace is not None:
            self._trace.complete("dram", self._track, "access", start, done,
                                 {"bank": loc.bank, "row": loc.row,
                                  "kind": kind})
        return done

    @rendezvous("dram-rowclone")
    def row_copy(self, src_loc: DramLocation, dst_loc: DramLocation,
                 now: int, mode: str, lines: int) -> int:
        """Copy ``lines`` cachelines from ``src_loc`` to ``dst_loc`` in DRAM.

        ``mode`` is the mechanism the controller chose for this job:

        * ``"fpm"`` — RowClone fast parallel mode: back-to-back
          activations within one subarray clone the whole row without
          touching the channel bus.  Both banks (one, when src and dst
          share a bank) are busy for the activation window.
        * ``"mirror"`` — In-Memory Mirroring: one activation window
          drives both rows, no read phase, no bus occupancy.
        * ``"psm"`` — RowClone pipelined serial mode: one cacheline at a
          time through the internal bus, serializing against ordinary
          data bursts (this is where bandwidth pressure bites).

        Returns the completion cycle.  Like :meth:`access`, ``now`` is
        the cycle the command reaches the device; bank/bus state is a
        busy-until model, so calls compute future completion times
        deterministically in grant order.
        """
        src_bank = self.banks[src_loc.bank]
        dst_bank = self.banks[dst_loc.bank]
        start = max(now, src_bank.ready_at, dst_bank.ready_at)
        if mode == "fpm":
            done = start + params.ROWCLONE_FPM_CYCLES
            self._copies_fpm.value += 1
        elif mode == "mirror":
            done = start + params.MIRROR_ROW_CYCLES
            self._copies_mirror.value += 1
        else:  # psm
            start = max(start, self.bus_free_at)
            done = start + lines * params.ROWCLONE_PSM_PER_LINE_CYCLES
            self.bus_free_at = done
            self._busy_cycles.value += done - start
            self._copies_psm.value += 1
        # Both banks end the copy with the touched rows activated (FPM's
        # AAP sequence leaves the destination row in the row buffer;
        # PSM's serial transfers keep both rows open throughout).
        src_bank.ready_at = done
        dst_bank.ready_at = done
        src_bank.open_row = src_loc.row
        dst_bank.open_row = dst_loc.row
        self._copy_lines.value += lines
        if self._trace is not None:
            self._trace.complete("dram", self._track, f"rowcopy-{mode}",
                                 start, done,
                                 {"src_bank": src_loc.bank,
                                  "dst_bank": dst_loc.bank,
                                  "lines": lines})
        return done

    def earliest_start(self, now: int) -> int:
        """Earliest cycle a new access could begin on this channel."""
        return max(now, self.bus_free_at)
