"""DDR4-style DRAM device timing.

Each channel has a set of banks, each with an open-row register.  An access
costs a device latency that depends on the row-buffer state (hit / closed /
conflict) plus data-burst occupancy of the shared channel data bus.  The
channel bus is modelled as a busy-until resource: requests serialize on it,
which is what produces bandwidth-bound behaviour (Figs 16b/17b/22).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common import params
from repro.dram.address_map import DramLocation
from repro.sim.shard import rendezvous, shard_local
from repro.sim.stats import StatGroup


@shard_local
class Bank:
    """One DRAM bank: tracks the open row and when it is next usable."""

    __slots__ = ("open_row", "ready_at")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at: int = 0


@shard_local
class DramChannel:
    """Timing model of one DRAM channel (one per memory controller)."""

    def __init__(self, stats: StatGroup, banks: int = params.DRAM_BANKS_PER_CHANNEL):
        self.banks: Dict[int, Bank] = {b: Bank() for b in range(banks)}
        self.bus_free_at: int = 0
        self.stats = stats
        self._row_hits = stats.counter("row_hits", "row-buffer hits")
        self._row_misses = stats.counter("row_misses", "closed-row activations")
        self._row_conflicts = stats.counter("row_conflicts", "row-buffer conflicts")
        self._busy_cycles = stats.counter("bus_busy_cycles", "data-bus occupancy")
        self._accesses = stats.counter("accesses", "total device accesses")
        # Optional repro.obs tracer (set by runtime.attach_tracer) and
        # this channel's trace track name.  The "dram" category is a
        # firehose (one event per device access) and is off by default.
        self._trace = None
        self._track = "dram"

    @rendezvous("dram-access")
    def access(self, loc: DramLocation, now: int) -> int:
        """Perform one cacheline access; returns the completion cycle.

        Updates bank open-row state and channel bus occupancy.  ``now`` is
        the cycle the request reaches the device.
        """
        bank = self.banks[loc.bank]
        start = max(now, bank.ready_at)

        if bank.open_row is None:
            device = params.DRAM_ROW_MISS_CYCLES
            occupancy = device  # activation blocks the bank
            self._row_misses.value += 1
            kind = "miss"
        elif bank.open_row == loc.row:
            device = params.DRAM_ROW_HIT_CYCLES
            # Back-to-back CAS to an open row pipeline at tCCD: the bank
            # accepts the next column command after roughly one burst.
            occupancy = params.DRAM_BURST_CYCLES
            self._row_hits.value += 1
            kind = "hit"
        else:
            device = params.DRAM_ROW_CONFLICT_CYCLES
            # FR-FCFS controllers batch same-row requests before
            # switching, amortizing the precharge+activate over several
            # column accesses.  Our in-order bank cannot reorder, so the
            # batching shows up as reduced *occupancy* (throughput) while
            # each conflicting access still pays the full latency.
            occupancy = device // 4
            self._row_conflicts.value += 1
            kind = "conflict"
        bank.open_row = loc.row

        # Banks overlap their device latency; only the 64B data burst
        # serializes on the shared channel data bus.
        data_ready = max(start + device, self.bus_free_at)
        done = data_ready + params.DRAM_BURST_CYCLES
        self.bus_free_at = done
        bank.ready_at = start + occupancy
        self._busy_cycles.value += params.DRAM_BURST_CYCLES
        self._accesses.value += 1
        if self._trace is not None:
            self._trace.complete("dram", self._track, "access", start, done,
                                 {"bank": loc.bank, "row": loc.row,
                                  "kind": kind})
        return done

    def earliest_start(self, now: int) -> int:
        """Earliest cycle a new access could begin on this channel."""
        return max(now, self.bus_free_at)
