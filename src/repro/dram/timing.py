"""DDR4 timing specification.

Derives the cycle-level constants in :mod:`repro.common.params` from
JEDEC-style device timings, so different speed grades (or a CXL-attached
latency adder, §I's motivation) can be swapped in.  The derivation is
deliberately first-order: the simulator's channel model needs only three
latency classes (row hit / closed row / row conflict) plus the data-burst
occupancy, which is what dominates the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import ns_to_cycles
from repro.sim.shard import shared


@shared
@dataclass(frozen=True)
class DdrTiming:
    """One speed grade's primary timings, in nanoseconds.

    Attributes follow JEDEC naming: tCL (CAS latency), tRCD (activate to
    column), tRP (precharge), tBL (data burst on the bus for one 64B
    line), plus an additive ``extra_ns`` for far-memory configurations
    (e.g. a CXL hop).
    """

    name: str
    tCL: float
    tRCD: float
    tRP: float
    tBL: float
    extra_ns: float = 0.0

    # ------------------------------------------------------- derivations
    @property
    def row_hit_ns(self) -> float:
        """Open-row access: CAS latency only."""
        return self.tCL + self.extra_ns

    @property
    def row_miss_ns(self) -> float:
        """Closed row: activate then CAS."""
        return self.tRCD + self.tCL + self.extra_ns

    @property
    def row_conflict_ns(self) -> float:
        """Wrong row open: precharge, activate, CAS."""
        return self.tRP + self.tRCD + self.tCL + self.extra_ns

    def cycles(self, clock_ghz: float = 4.0) -> dict:
        """All four constants in CPU cycles at ``clock_ghz``."""
        return {
            "row_hit": ns_to_cycles(self.row_hit_ns, clock_ghz),
            "row_miss": ns_to_cycles(self.row_miss_ns, clock_ghz),
            "row_conflict": ns_to_cycles(self.row_conflict_ns, clock_ghz),
            "burst": ns_to_cycles(self.tBL, clock_ghz),
        }


#: The default grade behind ``repro.common.params``.  The "t" values are
#: *effective* latencies as seen at the controller (JEDEC timing plus
#: on-DIMM command overheads), which is why tCL here is larger than the
#: raw 14 ns CAS of a DDR4-2400 part; 64B over a 64-bit bus at 2400 MT/s
#: is 8 beats = 3.33 ns.
DDR4_2400 = DdrTiming(name="DDR4-2400", tCL=26.0, tRCD=26.0, tRP=26.0,
                      tBL=3.33)

#: A faster bin, for sensitivity studies.
DDR4_3200 = DdrTiming(name="DDR4-3200", tCL=21.0, tRCD=21.0, tRP=21.0,
                      tBL=2.50)

#: CXL-attached DRAM: same device, plus a ~70ns controller/link adder —
#: the "memory latencies may worsen" future the paper motivates with.
CXL_DDR4 = DdrTiming(name="CXL-DDR4-2400", tCL=26.0, tRCD=26.0,
                     tRP=26.0, tBL=3.33, extra_ns=70.0)


def apply_timing(timing: DdrTiming, clock_ghz: float = 4.0) -> None:
    """Install a speed grade into :mod:`repro.common.params` globally.

    Affects systems built *after* the call.  Intended for sensitivity
    sweeps; tests must restore the default when done.
    """
    from repro.common import params

    derived = timing.cycles(clock_ghz)
    params.DRAM_ROW_HIT_CYCLES = derived["row_hit"]
    params.DRAM_ROW_MISS_CYCLES = derived["row_miss"]
    params.DRAM_ROW_CONFLICT_CYCLES = derived["row_conflict"]
    params.DRAM_BURST_CYCLES = derived["burst"]
