"""Physical address → (channel, bank, row) decomposition.

Channels are interleaved at cacheline granularity (the common server layout
and what lets (MC)² bounces cross memory controllers, per Figures 6-7 of
the paper).  Within a channel, consecutive channel-local lines fill a row
across banks-interleaved-by-row so that streaming accesses hit open rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import CACHELINE_SIZE
from repro.sim.shard import shared


@shared
@dataclass(frozen=True)
class DramLocation:
    """Decoded location of one cacheline inside the DRAM system."""

    channel: int
    bank: int
    row: int
    column: int


@shared
class AddressMap:
    """Cacheline-interleaved channel map with row-major bank layout."""

    def __init__(self, channels: int, banks_per_channel: int, row_bytes: int):
        if channels <= 0 or banks_per_channel <= 0:
            raise ConfigError("channels and banks must be positive")
        if row_bytes % CACHELINE_SIZE:
            raise ConfigError("row size must be a multiple of the cacheline")
        self.channels = channels
        self.banks_per_channel = banks_per_channel
        self.row_bytes = row_bytes
        self.lines_per_row = row_bytes // CACHELINE_SIZE

    def channel_of(self, addr: int) -> int:
        """Channel (= memory controller index) owning ``addr``."""
        line = addr // CACHELINE_SIZE
        return line % self.channels

    def decode(self, addr: int) -> DramLocation:
        """Full (channel, bank, row, column) location of ``addr``."""
        line = addr // CACHELINE_SIZE
        channel = line % self.channels
        local_line = line // self.channels
        row_index = local_line // self.lines_per_row
        column = local_line % self.lines_per_row
        # Hash the row index into the bank so that streams any fixed
        # stride apart do not persistently alias onto one bank.  Real
        # controllers XOR a selection of row bits; an avalanche mix
        # (xorshift-multiply-xorshift) is the software stand-in with the
        # same effect and no pathological strides — a plain XOR fold or
        # multiplicative hash leaves linear deltas that keep two copy
        # streams ping-ponging the same bank.
        mixed = row_index & 0xFFFFFFFF
        mixed ^= mixed >> 7
        mixed = (mixed * 0x9E3779B1) & 0xFFFFFFFF
        mixed ^= mixed >> 13
        bank = mixed % self.banks_per_channel
        row = row_index // self.banks_per_channel
        return DramLocation(channel=channel, bank=bank, row=row, column=column)
