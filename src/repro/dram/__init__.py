"""DDR4-style DRAM timing and address mapping."""

from repro.dram.address_map import AddressMap, DramLocation
from repro.dram.device import Bank, DramChannel
from repro.dram.timing import CXL_DDR4, DDR4_2400, DDR4_3200, DdrTiming

__all__ = ["AddressMap", "DramLocation", "DramChannel", "Bank",
           "DdrTiming", "DDR4_2400", "DDR4_3200", "CXL_DDR4"]
