"""Stride prefetcher (Table I: both cache levels have one).

Classic reference-prediction-table design: per requestor, track the last
address and the last observed stride; when the same stride repeats enough
times (confidence threshold), prefetch ``degree`` lines ahead.  For the
(MC)² evaluation the prefetcher matters a lot: sequential destination
reads (Fig. 12) are prefetched, the prefetch *bounces* at the MC, and the
bounce latency is hidden — the paper's "No prefetch" ablation shows (MC)²
up to 21% *slower* than memcpy without it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common import params
from repro.common.units import CACHELINE_SIZE, align_down
from repro.sim.shard import shard_local
from repro.sim.stats import StatGroup


@shard_local(domain="cpu")
class _StreamEntry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, addr: int):
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0


@shard_local(domain="cpu")
class StridePrefetcher:
    """Reference prediction table keyed by requestor id."""

    def __init__(
        self,
        stats: Optional[StatGroup] = None,
        degree: int = params.PREFETCH_DEGREE,
        table_entries: int = params.PREFETCH_TABLE_ENTRIES,
        confidence_threshold: int = params.PREFETCH_CONFIDENCE_THRESHOLD,
        enabled: bool = True,
    ):
        self.degree = degree
        self.table_entries = table_entries
        self.confidence_threshold = confidence_threshold
        self.enabled = enabled
        self._table: Dict[int, _StreamEntry] = {}
        stats = stats or StatGroup("prefetcher")
        self.stats = stats
        self._issued = stats.counter("issued", "prefetches issued")
        self._trained = stats.counter("trained", "stride confirmations")

    def observe(self, requestor: int, addr: int) -> List[int]:
        """Train on a demand access; returns line addresses to prefetch.

        Streams are tracked per (requestor, 4KB page), so interleaved
        access streams — e.g. memcpy's alternating source and destination
        — train independently, as hardware stream prefetchers do.
        """
        if not self.enabled:
            return []
        line = align_down(addr, CACHELINE_SIZE)
        key = (requestor, addr >> 12)
        entry = self._table.get(key)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[key] = _StreamEntry(line)
            return []
        stride = line - entry.last_addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 8)
            self._trained.inc()
        else:
            entry.stride = stride
            entry.confidence = 1
        entry.last_addr = line
        if entry.confidence < self.confidence_threshold:
            return []
        targets = [line + entry.stride * (i + 1) for i in range(self.degree)]
        targets = [t for t in targets if t >= 0]
        self._issued.inc(len(targets))
        return targets
