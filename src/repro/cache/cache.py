"""Set-associative write-back caches carrying functional data.

A :class:`Cache` is a plain state container (tags + data + LRU); the
:class:`~repro.cache.hierarchy.CacheHierarchy` drives lookups, fills,
evictions and timing.  Lines carry real bytes: dirty data lives only in
the cache until written back, which is what makes the (MC)² BPQ semantics
(lazy copies read *pre-write* memory) testable end to end.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.units import CACHELINE_SIZE
from repro.sim.shard import shard_local
from repro.sim.stats import StatGroup

# Line-address arithmetic is inlined in the lookup paths below (they run
# once per simulated cache access, the hottest non-engine code in the
# repo): CACHELINE_SIZE is a power of two, so aligning is a mask and the
# set index is a shift.
_LINE_SHIFT = CACHELINE_SIZE.bit_length() - 1
_LINE_MASK = ~(CACHELINE_SIZE - 1)
assert CACHELINE_SIZE == 1 << _LINE_SHIFT, "cacheline size must be 2^n"


@shard_local(domain="cpu")
class CacheLine:
    """One resident cacheline: tag state plus its 64 data bytes."""

    __slots__ = ("addr", "dirty", "data", "last_used")

    def __init__(self, addr: int, data: bytes, now: int):
        self.addr = addr
        self.dirty = False
        self.data = bytearray(data)
        self.last_used = now


@shard_local(domain="cpu")
class Cache:
    """A set-associative cache with a pluggable replacement policy."""

    def __init__(self, name: str, size: int, assoc: int,
                 stats: Optional[StatGroup] = None,
                 policy: Optional["ReplacementPolicy"] = None):
        from repro.cache.replacement import LruPolicy
        if size % (assoc * CACHELINE_SIZE):
            raise ConfigError(f"{name}: size {size} not divisible by "
                              f"assoc*linesize")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.policy = policy or LruPolicy()
        self.num_sets = size // (assoc * CACHELINE_SIZE)
        self._sets: List[Dict[int, CacheLine]] = [
            {} for _ in range(self.num_sets)]
        stats = stats or StatGroup(name)
        self.stats = stats
        self.hits = stats.counter("hits", "lookups that hit")
        self.misses = stats.counter("misses", "lookups that missed")
        self.evictions = stats.counter("evictions", "lines evicted")
        self.dirty_evictions = stats.counter(
            "dirty_evictions", "evictions requiring writeback")
        self.invalidations = stats.counter("invalidations", "lines invalidated")
        stats.formula(
            "hit_rate", "hits / (hits + misses)",
            lambda: (self.hits.value / (self.hits.value + self.misses.value)
                     if (self.hits.value + self.misses.value) else 0.0))

    @property
    def policy(self) -> "ReplacementPolicy":
        return self._policy

    @policy.setter
    def policy(self, policy: "ReplacementPolicy") -> None:
        # Cache the per-hit callback (or None when the policy opted out
        # via ReplacementPolicy.tracks_touch) so the lookup fast path
        # skips a no-op Python call on the default LRU configuration.
        # A setter, not an __init__ assignment, because tests swap the
        # policy on a live cache.
        self._policy = policy
        self._touch = (policy.on_touch
                       if getattr(policy, "tracks_touch", True) else None)

    # ------------------------------------------------------------- lookup
    def lookup(self, addr: int, now: int, touch: bool = True
               ) -> Optional[CacheLine]:
        """Find the line containing ``addr``; updates LRU when ``touch``."""
        line_addr = addr & _LINE_MASK
        line = self._sets[(line_addr >> _LINE_SHIFT) % self.num_sets].get(line_addr)
        if line is not None and touch:
            line.last_used = now
            if self._touch is not None:
                self._touch(line)
        return line

    def probe(self, addr: int) -> bool:
        """Tag check without LRU update or stats."""
        line_addr = addr & _LINE_MASK
        return line_addr in self._sets[(line_addr >> _LINE_SHIFT) % self.num_sets]

    # --------------------------------------------------------------- fill
    def fill(self, addr: int, data: bytes, now: int,
             dirty: bool = False) -> Optional[CacheLine]:
        """Insert a line, evicting the LRU victim if the set is full.

        Returns the evicted :class:`CacheLine` when one was displaced
        (caller writes it back if dirty), else ``None``.
        """
        line_addr = addr & _LINE_MASK
        cset = self._sets[(line_addr >> _LINE_SHIFT) % self.num_sets]
        existing = cset.get(line_addr)
        if existing is not None:
            # The resident copy is at least as new as any incoming fill
            # (fills carry memory data; dirty bytes live here), so never
            # clobber it.  Writebacks into L2 may still set the dirty bit.
            existing.dirty = existing.dirty or dirty
            existing.last_used = now
            if dirty:
                existing.data = bytearray(data)
            return None
        victim: Optional[CacheLine] = None
        if len(cset) >= self.assoc:
            victim_addr = self.policy.victim(cset, now)
            victim = cset.pop(victim_addr)
            self.evictions.inc()
            if victim.dirty:
                self.dirty_evictions.inc()
        line = CacheLine(line_addr, data, now)
        line.dirty = dirty
        cset[line_addr] = line
        self.policy.on_fill(line)
        return victim

    # ----------------------------------------------------------- maintain
    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Drop the line containing ``addr`` (returns it if present)."""
        line_addr = addr & _LINE_MASK
        line = self._sets[(line_addr >> _LINE_SHIFT) % self.num_sets].pop(line_addr, None)
        if line is not None:
            self.invalidations.inc()
        return line

    def clean(self, addr: int) -> Optional[bytes]:
        """CLWB semantics: clear the dirty bit, return data if it was dirty."""
        line_addr = addr & _LINE_MASK
        line = self._sets[(line_addr >> _LINE_SHIFT) % self.num_sets].get(line_addr)
        if line is not None and line.dirty:
            line.dirty = False
            return bytes(line.data)
        return None

    def resident_lines(self) -> int:
        """Total lines currently resident."""
        return sum(len(s) for s in self._sets)

    def dirty_lines(self) -> List[CacheLine]:
        """All dirty lines (used to flush at end of a region of interest)."""
        return [line for cset in self._sets for line in cset.values()
                if line.dirty]

    def clear(self) -> None:
        """Drop every line without writeback (test helper)."""
        for cset in self._sets:
            cset.clear()

    def write_bytes(self, addr: int, data: bytes, now: int) -> bool:
        """Write ``data`` into a resident line; True on success."""
        line_addr = addr & _LINE_MASK
        line = self._sets[(line_addr >> _LINE_SHIFT) % self.num_sets].get(line_addr)
        if line is None:
            return False
        line.last_used = now
        if self._touch is not None:
            self._touch(line)
        offset = addr - line.addr
        if offset + len(data) > CACHELINE_SIZE:
            raise ConfigError("store crosses a cacheline boundary")
        line.data[offset:offset + len(data)] = data
        line.dirty = True
        return True

    def read_bytes(self, addr: int, size: int, now: int) -> Optional[bytes]:
        """Read ``size`` bytes from a resident line; None on miss."""
        line_addr = addr & _LINE_MASK
        line = self._sets[(line_addr >> _LINE_SHIFT) % self.num_sets].get(line_addr)
        if line is None:
            return None
        line.last_used = now
        if self._touch is not None:
            self._touch(line)
        offset = addr - line.addr
        if offset + size > CACHELINE_SIZE:
            raise ConfigError("load crosses a cacheline boundary")
        return bytes(line.data[offset:offset + size])
