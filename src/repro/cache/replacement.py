"""Pluggable cache replacement policies.

The paper's configuration uses plain LRU; these alternatives exist for
sensitivity studies (e.g. how much of Fig. 12's prefetch benefit depends
on scan-resistant replacement).

A policy sees touches and fills for one set at a time and picks victims;
the :class:`~repro.cache.cache.Cache` container owns the line storage.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import ConfigError
from repro.sim.shard import shard_local


@shard_local(domain="cpu")
class ReplacementPolicy:
    """Interface: track per-line state, choose a victim address."""

    name = "abstract"
    #: False lets the cache skip the per-hit on_touch call entirely —
    #: ``line.last_used`` is always stamped by the cache itself, so
    #: policies that only need recency (LRU, random) opt out of the
    #: callback on the hottest path in the repo.
    tracks_touch = True

    def on_touch(self, line) -> None:
        """A hit touched ``line``."""
        raise NotImplementedError

    def on_fill(self, line) -> None:
        """``line`` was just installed."""
        raise NotImplementedError

    def victim(self, cache_set: Dict[int, object], now: int) -> int:
        """Address of the line to evict from a full set."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used (the default; matches the paper's setup)."""

    name = "lru"
    tracks_touch = False

    def on_touch(self, line) -> None:
        pass  # Cache already stamps line.last_used

    def on_fill(self, line) -> None:
        pass

    def victim(self, cache_set, now: int) -> int:
        return min(cache_set, key=lambda a: cache_set[a].last_used)


class RandomPolicy(ReplacementPolicy):
    """Pseudo-random victim (deterministic: hash of address and time)."""

    name = "random"
    tracks_touch = False

    def on_touch(self, line) -> None:
        pass

    def on_fill(self, line) -> None:
        pass

    def victim(self, cache_set, now: int) -> int:
        addrs = sorted(cache_set)
        mixed = (now * 0x9E3779B1) & 0xFFFFFFFF
        return addrs[mixed % len(addrs)]


class SrripPolicy(ReplacementPolicy):
    """Static RRIP (scan-resistant; Jaleel et al., ISCA 2010), 2-bit.

    Fills insert with a "long" re-reference prediction; hits promote to
    "near".  Victims are lines already predicted "distant"; if none, all
    predictions age until one is.  Streaming scans (like memcpy's
    destination) evict themselves instead of flushing the working set.
    """

    name = "srrip"
    MAX_RRPV = 3

    def __init__(self):
        self._rrpv: Dict[int, int] = {}

    def on_touch(self, line) -> None:
        self._rrpv[id(line)] = 0

    def on_fill(self, line) -> None:
        self._rrpv[id(line)] = self.MAX_RRPV - 1

    def victim(self, cache_set, now: int) -> int:
        lines = list(cache_set.items())
        while True:
            for addr, line in lines:
                if self._rrpv.get(id(line), self.MAX_RRPV) >= self.MAX_RRPV:
                    self._rrpv.pop(id(line), None)
                    return addr
            for _, line in lines:
                key = id(line)
                self._rrpv[key] = min(self._rrpv.get(key, self.MAX_RRPV)
                                      + 1, self.MAX_RRPV)


def make_policy(name: str) -> ReplacementPolicy:
    """Factory: ``lru`` / ``random`` / ``srrip``."""
    policies = {"lru": LruPolicy, "random": RandomPolicy,
                "srrip": SrripPolicy}
    if name not in policies:
        raise ConfigError(f"unknown replacement policy {name!r}; "
                          f"choose from {sorted(policies)}")
    return policies[name]()
