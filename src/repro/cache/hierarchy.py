"""Two-level cache hierarchy (per-core L1 + shared L2) with timing.

Responsibilities:

* demand loads/stores with write-allocate and RFO semantics,
* MSHR-bounded memory-level parallelism per core,
* dirty-line writebacks on eviction (functional data reaches memory only
  through these, which is what the (MC)² BPQ relies on),
* CLWB (flush one line, keep it cached clean),
* non-temporal stores (straight to memory, invalidating cached copies),
* MCLAZY pre-processing (§III-B1): write back dirty source lines, then
  invalidate destination lines, then forward the packet to the MCs,
* stride prefetching at the L2 (Table I has one at both levels; modelling
  it where misses are expensive captures the behaviour that matters).

A simple write-invalidate policy keeps per-core L1s coherent: a store by
one core invalidates the line in other cores' L1s.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common import params
from repro.common.units import CACHELINE_SIZE, align_down
from repro.cache.cache import _LINE_SHIFT, Cache
from repro.cache.prefetcher import StridePrefetcher
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.shard import shard_local
from repro.sim.stats import StatGroup


@shard_local(domain="cpu")
class CacheHierarchy:
    """Per-core L1s over a shared L2, fronting the memory interconnect."""

    def __init__(
        self,
        sim: Simulator,
        num_cores: int,
        send_to_memory: Callable[[Packet], None],
        stats: StatGroup,
        l1_size: int = params.L1_SIZE,
        l1_assoc: int = params.L1_ASSOC,
        l2_size: int = params.L2_SIZE,
        l2_assoc: int = params.L2_ASSOC,
        prefetch_enabled: bool = True,
    ):
        self.sim = sim
        self.num_cores = num_cores
        self.send_to_memory = send_to_memory
        self.stats = stats
        self.l1s = [Cache(f"l1_{i}", l1_size, l1_assoc,
                          stats.group(f"l1_{i}")) for i in range(num_cores)]
        self.l2 = Cache("l2", l2_size, l2_assoc, stats.group("l2"))
        # Precomputed scan orders (hot: one full-hierarchy walk per line
        # for CLWB/MCLAZY/bulk-copy flushes).  ``_caches`` is every cache
        # once; ``_scan_order[core]`` starts at that core's L1, then the
        # shared L2, then the peers — the same order the per-call list
        # construction used to produce.
        self._caches: List[Cache] = self.l1s + [self.l2]
        self._scan_order: List[List[Cache]] = [
            [self.l1s[core], self.l2]
            + [l1 for i, l1 in enumerate(self.l1s) if i != core]
            for core in range(num_cores)]
        self.prefetcher = StridePrefetcher(stats.group("prefetcher"),
                                           enabled=prefetch_enabled)
        # Per-core outstanding L1 misses (MSHR budget) + wait queues.
        self._outstanding: List[int] = [0] * num_cores
        self._mshr_waiters: List[List[Callable[[], None]]] = [
            [] for _ in range(num_cores)]
        # Lines with a memory fetch in flight: addr -> callbacks waiting.
        self._inflight_fills: Dict[int, List[Callable[[bytes, int], None]]] = {}
        self._prefetch_inflight: set = set()
        # Prefetch queue depth is tracked per requesting core: one
        # saturated stream must not starve the other cores' prefetchers.
        self._prefetch_inflight_by_core: List[int] = [0] * num_cores
        self._clwb_inflight = 0
        self._clwb_waiters: List[Callable[[], None]] = []
        # Optional repro.obs tracer (set by runtime.attach_tracer).
        self._trace = None
        # Invalidation epochs: a fill that started before an invalidation
        # (MCLAZY destination, NT store, bulk-copy overwrite) must not
        # install its now-stale data when it returns.
        self._fill_epoch: Dict[int, int] = {}
        # Lines whose cached copy was filled from poisoned memory
        # (detected-uncorrectable ECC).  Writebacks of these lines carry
        # the poison back to memory so corruption stays contained; a
        # clean refill or full invalidation clears the mark.  Empty on a
        # healthy machine, so the hot paths are unaffected.
        self.poisoned_lines: set = set()

        self._loads = stats.counter("loads", "demand loads")
        self._stores = stats.counter("stores", "demand stores")
        self._mem_reads = stats.counter("mem_reads", "reads sent to memory")
        self._writebacks = stats.counter("writebacks", "dirty lines written back")
        self._clwbs = stats.counter("clwbs", "CLWB flushes performed")
        self._nt_stores = stats.counter("nt_stores", "non-temporal stores")
        self._prefetch_fills = stats.counter(
            "prefetch_fills", "prefetched lines installed")
        self._prefetch_useful = stats.counter(
            "prefetch_useful", "demand hits on in-flight prefetches")

    # ------------------------------------------------------------ demand
    def load(self, core: int, addr: int, size: int,
             on_complete: Callable[[bytes, int], None]) -> None:
        """Load ``size`` bytes (within one line) for ``core``.

        ``on_complete(data, finish_cycle)`` fires when the value is
        available.  Latency: L1 hit, L2 hit, or full memory round trip,
        bounded by the core's MSHR budget.
        """
        self._loads.value += 1
        line_addr = align_down(addr, CACHELINE_SIZE)
        offset = addr - line_addr
        if offset + size > CACHELINE_SIZE:
            self._split_load(core, addr, size, on_complete)
            return
        l1 = self.l1s[core]

        line = l1.lookup(addr, self.sim.now)
        if line is not None:
            l1.hits.value += 1
            done = self.sim.now + params.L1_HIT_CYCLES
            data = bytes(line.data[offset:offset + size])
            self.sim.schedule_at(done, lambda: on_complete(data, done),
                                 label="l1-hit")
            return
        l1.misses.value += 1
        self._train_prefetcher(core, line_addr)

        # MESI-style owner forward: if a peer L1 holds the line dirty,
        # its copy is the truth — any L2 copy is a stale RFO fill.
        # Migrate it into the shared L2 before consulting it.
        for i, peer in enumerate(self.l1s):
            if i == core:
                continue
            peer_line = peer.lookup(addr, self.sim.now, touch=False)
            if peer_line is not None and peer_line.dirty:
                self._install(self.l2, line_addr, bytes(peer_line.data),
                              dirty=True)
                peer_line.dirty = False
                break

        l2_line = self.l2.lookup(addr, self.sim.now)
        if l2_line is not None:
            self.l2.hits.value += 1
            done = self.sim.now + params.L2_HIT_CYCLES
            data = bytes(l2_line.data)
            value = data[offset:offset + size]
            epoch = self._fill_epoch.get(line_addr, 0)

            def _fill_l1() -> None:
                if self._fill_epoch.get(line_addr, 0) == epoch:
                    self._install(l1, line_addr, data, dirty=False)
                on_complete(value, done)

            self.sim.schedule_at(done, _fill_l1, label="l2-hit")
            return
        self.l2.misses.value += 1

        # Snoop peer L1s: a dirty copy there must be forwarded, not
        # re-fetched stale from memory.
        for i, peer in enumerate(self.l1s):
            if i == core:
                continue
            peer_line = peer.lookup(addr, self.sim.now, touch=False)
            if peer_line is not None:
                data = bytes(peer_line.data)
                self._install(self.l2, line_addr, data,
                              dirty=peer_line.dirty)
                peer_line.dirty = False
                done = self.sim.now + params.L2_HIT_CYCLES + 10
                value = data[offset:offset + size]
                epoch = self._fill_epoch.get(line_addr, 0)

                def _forwarded(d=data, v=value, t=done) -> None:
                    if self._fill_epoch.get(line_addr, 0) == epoch:
                        self._install(l1, line_addr, d, dirty=False)
                    on_complete(v, t)

                self.sim.schedule_at(done, _forwarded, label="peer-forward")
                return

        def _on_fill(data: bytes, finish: int) -> None:
            on_complete(data[offset:offset + size], finish)

        self._fetch_line(core, line_addr, _on_fill, fill_l1=True)

    def store(self, core: int, addr: int, size: int, data: bytes,
              on_complete: Callable[[int], None]) -> None:
        """Store ``size`` bytes (within one line): write-allocate + RFO.

        ``on_complete(finish_cycle)`` fires when the store has landed in
        the cache (i.e. when a store-buffer entry could drain).
        """
        self._stores.value += 1
        line_addr = align_down(addr, CACHELINE_SIZE)
        if (addr - line_addr) + size > CACHELINE_SIZE:
            self._split_store(core, addr, size, data, on_complete)
            return
        l1 = self.l1s[core]
        self._invalidate_peers(core, line_addr)
        # A store that rewrites every byte of the line no longer depends
        # on the (possibly poisoned) previous contents: recovery by full
        # overwrite, as on real machines.  Partial stores keep the taint.
        full_line = addr == line_addr and size == CACHELINE_SIZE

        if l1.write_bytes(addr, data, self.sim.now):
            if full_line:
                self.poisoned_lines.discard(line_addr)
            l1.hits.value += 1
            done = self.sim.now + 1
            self.sim.schedule_at(done, lambda: on_complete(done),
                                 label="store-hit")
            return
        l1.misses.value += 1
        self._train_prefetcher(core, line_addr)

        l2_line = self.l2.lookup(addr, self.sim.now)
        if l2_line is not None:
            self.l2.hits.value += 1
            done = self.sim.now + params.L2_HIT_CYCLES

            def _fill_and_write() -> None:
                self._install(l1, line_addr, bytes(l2_line.data), dirty=False)
                l1.write_bytes(addr, data, self.sim.now)
                if full_line:
                    self.poisoned_lines.discard(line_addr)
                on_complete(done)

            self.sim.schedule_at(done, _fill_and_write, label="store-l2")
            return
        self.l2.misses.value += 1

        def _on_rfo(line_data: bytes, finish: int) -> None:
            l1.write_bytes(addr, data, self.sim.now)
            if full_line:
                self.poisoned_lines.discard(line_addr)
            on_complete(finish)

        self._fetch_line(core, line_addr, _on_rfo, fill_l1=True)

    def _split_load(self, core: int, addr: int, size: int,
                    on_complete: Callable[[bytes, int], None]) -> None:
        """A load crossing a cacheline splits into two accesses."""
        first = CACHELINE_SIZE - (addr % CACHELINE_SIZE)
        parts: Dict[int, bytes] = {}
        latest = [0]

        def _collect(idx, n):
            def _done(data: bytes, finish: int) -> None:
                parts[idx] = data
                latest[0] = max(latest[0], finish)
                if len(parts) == 2:
                    on_complete(parts[0] + parts[1], latest[0])
            return _done

        self.load(core, addr, first, _collect(0, first))
        self.load(core, addr + first, size - first, _collect(1, size - first))

    def _split_store(self, core: int, addr: int, size: int, data: bytes,
                     on_complete: Callable[[int], None]) -> None:
        """A store crossing a cacheline splits into two accesses."""
        first = CACHELINE_SIZE - (addr % CACHELINE_SIZE)
        remaining = [2]
        latest = [0]

        def _done(finish: int) -> None:
            remaining[0] -= 1
            latest[0] = max(latest[0], finish)
            if remaining[0] == 0:
                on_complete(latest[0])

        self.store(core, addr, first, data[:first], _done)
        self.store(core, addr + first, size - first, data[first:], _done)

    # -------------------------------------------------------- special ops
    def nt_store(self, core: int, addr: int, size: int, data: bytes,
                 on_complete: Callable[[int], None]) -> None:
        """Non-temporal store: bypass the caches, no RFO (§V-B, Fig. 17)."""
        self._nt_stores.inc()
        line_addr = align_down(addr, CACHELINE_SIZE)
        merged = bytearray(self._functional_line(core, line_addr))
        offset = addr - line_addr
        merged[offset:offset + size] = data
        # A full-line NT store is all-fresh data; a partial one keeps
        # bytes from a (possibly poisoned) cached copy.  Capture before
        # the invalidation clears the poison mark.
        tainted = (size < CACHELINE_SIZE
                   and line_addr in self.poisoned_lines)
        self._invalidate_everywhere(line_addr)
        pkt = Packet(PacketType.WRITE, line_addr, CACHELINE_SIZE,
                     requestor=core,
                     on_complete=lambda p: on_complete(self.sim.now))
        pkt.data = bytes(merged)
        pkt.poisoned = tainted
        self._send(pkt)

    def clwb(self, core: int, addr: int,
             on_complete: Callable[[int], None]) -> None:
        """Flush the line containing ``addr`` to memory; keep it cached.

        Completion fires when the memory controller *accepts* the write —
        so a full BPQ (tracked-source line) delays it, which is exactly
        the back-pressure Figure 21 measures.  Drains share a small pool
        of line-fill buffers, so long CLWB trains serialize — the >1KB
        knee of Fig. 11.
        """
        if self._clwb_inflight >= params.CLWB_PARALLELISM:
            self._clwb_waiters.append(
                lambda: self.clwb(core, addr, on_complete))
            return
        self._clwb_inflight += 1

        def _done(finish: int) -> None:
            self._clwb_inflight -= 1
            if self._clwb_waiters:
                self._clwb_waiters.pop(0)()
            on_complete(finish)

        line_addr = align_down(addr, CACHELINE_SIZE)
        data = self._clean_scan(self._scan_order[core], line_addr)
        if data is None:
            # Nothing dirty anywhere: the flush still probes the whole
            # hierarchy before completing.
            done = self.sim.now + params.CLWB_PROBE_CYCLES
            self.sim.schedule_at(done, lambda: _done(done),
                                 label="clwb-clean")
            return
        self._clwbs.inc()
        pkt = Packet(PacketType.WRITE, line_addr, CACHELINE_SIZE,
                     requestor=core,
                     on_complete=lambda p: _done(self.sim.now))
        pkt.data = data
        self._send(pkt)

    def clwb_range(self, core: int, addr: int, size: int,
                   on_complete: Callable[[int], None]) -> None:
        """Range writeback (§V-A1 extension): one probe pass over the
        range, writebacks only for lines actually dirty.

        Completion fires when every generated writeback has been accepted
        by its memory controller (so BPQ back-pressure still applies).
        """
        start = align_down(addr, CACHELINE_SIZE)
        pending = {"n": 1}  # sentinel until the scan finishes
        latest = [self.sim.now]

        def _one_done(finish: int = 0) -> None:
            pending["n"] -= 1
            latest[0] = max(latest[0], self.sim.now)
            if pending["n"] == 0:
                on_complete(latest[0])

        dirty = 0
        for line in range(start, addr + size, CACHELINE_SIZE):
            data = self._clean_scan(self._caches, line)
            if data is None:
                continue
            dirty += 1
            self._clwbs.inc()
            pending["n"] += 1
            pkt = Packet(PacketType.WRITE, line, CACHELINE_SIZE,
                         requestor=core,
                         on_complete=lambda p: _one_done())
            pkt.data = data
            self._send(pkt)
        # The probe itself costs one pass over the range's tags —
        # pipelined, so a fixed overhead plus a small per-line term.
        probe = params.CLWB_PROBE_CYCLES + (size // CACHELINE_SIZE) // 8
        self.sim.schedule(probe, _one_done, label="clwb-range-probe")

    def handle_mclazy(self, core: int, dst: int, src: int, size: int,
                      on_complete: Callable[[int], None]) -> None:
        """§III-B1 steps 2-3: flush source, invalidate dest, forward.

        Dirty source lines still cached (the wrapper normally CLWBs them
        first) are written back here so their data reaches the MC before
        the MCLAZY packet — the FIFO write-buffer guarantee.
        """
        if self._trace is not None:
            self._trace.instant("cache", "caches", "mclazy-preprocess",
                                {"dst": hex(dst), "src": hex(src),
                                 "size": size})
        for line in range(align_down(src, CACHELINE_SIZE),
                          src + size, CACHELINE_SIZE):
            data = self._clean_scan(self._caches, line)
            if data is not None:
                wb = Packet(PacketType.WRITE, line, CACHELINE_SIZE,
                            requestor=core)
                wb.data = data
                self._writebacks.inc()
                self._send(wb)
        for line in range(dst, dst + size, CACHELINE_SIZE):
            self._invalidate_everywhere(line)
        pkt = Packet(PacketType.MCLAZY, dst, size, src_addr=src,
                     requestor=core,
                     on_complete=lambda p: on_complete(self.sim.now))
        self._send(pkt)

    def handle_inmem_copy(self, core: int, dst: int, src: int, size: int,
                          mode: str,
                          on_complete: Callable[[int], None]) -> None:
        """Coherence boundary for an offloaded in-DRAM copy (LazyPIM).

        Before DRAM copies rows underneath the caches, dirty source
        lines must reach memory (or the clone would move stale bytes)
        and cached destination lines must be invalidated (or the CPU
        would keep reading pre-copy contents).  Same FIFO-write-buffer
        argument as MCLAZY: the writebacks take link slots ahead of the
        copy descriptor, and the interconnect scatters the descriptor to
        every controller owning a share of the destination.
        """
        if self._trace is not None:
            self._trace.instant("cache", "caches", "inmem-copy-preprocess",
                                {"dst": hex(dst), "src": hex(src),
                                 "size": size, "mode": mode})
        for line in range(align_down(src, CACHELINE_SIZE),
                          src + size, CACHELINE_SIZE):
            data = self._clean_scan(self._caches, line)
            if data is not None:
                wb = Packet(PacketType.WRITE, line, CACHELINE_SIZE,
                            requestor=core)
                wb.data = data
                self._writebacks.inc()
                self._send(wb)
        for line in range(dst, dst + size, CACHELINE_SIZE):
            self._invalidate_everywhere(line)
        pkt = Packet(PacketType.INMEM_COPY, dst, size, src_addr=src,
                     requestor=core,
                     on_complete=lambda p: on_complete(self.sim.now))
        pkt.copy_mode = mode
        self._send(pkt)

    def handle_mcfree(self, core: int, addr: int, size: int,
                      on_complete: Callable[[int], None]) -> None:
        """Forward an MCFREE hint to the memory controllers."""
        if self._trace is not None:
            self._trace.instant("cache", "caches", "mcfree",
                                {"addr": hex(addr), "size": size})
        pkt = Packet(PacketType.MCFREE, addr, size, requestor=core,
                     on_complete=lambda p: on_complete(self.sim.now))
        self._send(pkt)

    def bulk_copy(self, core: int, dst: int, src: int, size: int,
                  on_complete: Callable[[int], None]) -> None:
        """Line-granular copy driven by the memory system (``rep movsb``).

        Dirty cached source lines are flushed first; cached destination
        lines are invalidated (the copy overwrites them in memory).  Up
        to 32 lines are in flight at a time, modelling the microcoded
        copy loop's pipelining; completion fires when the last write is
        accepted.
        """
        assert dst % CACHELINE_SIZE == 0 and src % CACHELINE_SIZE == 0 \
            and size % CACHELINE_SIZE == 0, "bulk_copy is line-granular"
        if self._trace is not None:
            self._trace.instant("cache", "caches", "bulk-copy",
                                {"dst": hex(dst), "src": hex(src),
                                 "size": size})
        for line in range(src, src + size, CACHELINE_SIZE):
            data = self._clean_scan(self._caches, line)
            if data is not None:
                wb = Packet(PacketType.WRITE, line, CACHELINE_SIZE)
                wb.data = data
                self._send(wb)
        for line in range(dst, dst + size, CACHELINE_SIZE):
            self._invalidate_everywhere(line)

        lines = list(range(0, size, CACHELINE_SIZE))
        state = {"next": 0, "pending": 0}
        window = 32

        def _issue_more() -> None:
            while state["next"] < len(lines) and state["pending"] < window:
                offset = lines[state["next"]]
                state["next"] += 1
                state["pending"] += 1
                self._bulk_copy_line(dst + offset, src + offset, _one_done)
            if state["next"] >= len(lines) and state["pending"] == 0:
                on_complete(self.sim.now)

        def _one_done() -> None:
            state["pending"] -= 1
            _issue_more()

        _issue_more()

    def _bulk_copy_line(self, dst_line: int, src_line: int,
                        done: Callable[[], None]) -> None:
        def _got_src(pkt: Packet) -> None:
            wr = Packet(PacketType.WRITE, dst_line, CACHELINE_SIZE,
                        on_complete=lambda p: done())
            wr.data = pkt.data or bytes(CACHELINE_SIZE)
            wr.poisoned = pkt.poisoned  # poison travels with copied data
            self._send(wr)

        rd = Packet(PacketType.READ, src_line, CACHELINE_SIZE,
                    on_complete=_got_src)
        self._send(rd)

    # ----------------------------------------------------------- plumbing
    def _all_caches(self) -> List[Cache]:
        return self._caches

    @staticmethod
    def _clean_scan(caches: List[Cache], line_addr: int) -> Optional[bytes]:
        """Clear ``line_addr``'s dirty bit in every cache; first dirty wins.

        Equivalent to calling :meth:`Cache.clean` on each cache in order,
        with the tag probe inlined: the CLWB/MCLAZY/bulk-copy paths run
        this once per line over whole buffers, and the per-cache call
        overhead dominated their profile.  ``line_addr`` must be aligned.
        """
        data: Optional[bytes] = None
        for cache in caches:
            line = cache._sets[(line_addr >> _LINE_SHIFT)
                               % cache.num_sets].get(line_addr)
            if line is not None and line.dirty:
                line.dirty = False
                if data is None:
                    data = bytes(line.data)
        return data

    def _invalidate_everywhere(self, line_addr: int) -> None:
        """Drop a line from all caches and poison in-flight fills for it.

        Program-order-older accesses coalesced on an in-flight fill still
        receive the (older) data — that is consistent — but the fill no
        longer installs, and later accesses start a fresh fetch that
        observes the new memory-side state (e.g. a CTT bounce).
        """
        for cache in self._caches:
            # Cache.invalidate inlined (one call per cache per line over
            # whole buffers on the MCLAZY/bulk-copy paths).
            line = cache._sets[(line_addr >> _LINE_SHIFT)
                               % cache.num_sets].pop(line_addr, None)
            if line is not None:
                cache.invalidations.value += 1
        self._fill_epoch[line_addr] = self._fill_epoch.get(line_addr, 0) + 1
        self._inflight_fills.pop(line_addr, None)
        self.poisoned_lines.discard(line_addr)
        # A poisoned prefetch still returns and decrements its core's
        # counter via the discard guard, so only drop it from the dedup
        # set here if nothing is in flight for it anymore.

    def _invalidate_peers(self, core: int, line_addr: int) -> None:
        """Write-invalidate coherence: kill other cores' copies."""
        for i, l1 in enumerate(self.l1s):
            if i == core:
                continue
            victim = l1.invalidate(line_addr)
            if victim is not None and victim.dirty:
                # Migrate dirty data into the shared L2 instead of losing it.
                self._install(self.l2, line_addr, bytes(victim.data),
                              dirty=True)

    def _functional_line(self, core: int, line_addr: int) -> bytes:
        """Best-effort current value of a line from the caches (NT merge)."""
        for cache in self._scan_order[core]:
            line = cache._sets[(line_addr >> _LINE_SHIFT)
                               % cache.num_sets].get(line_addr)
            if line is not None:
                return bytes(line.data)
        return bytes(CACHELINE_SIZE)

    def _install(self, cache: Cache, line_addr: int, data: bytes,
                 dirty: bool) -> None:
        victim = cache.fill(line_addr, data, self.sim.now, dirty=dirty)
        if victim is not None and victim.dirty:
            if cache is not self.l2:
                self._install(self.l2, victim.addr, bytes(victim.data),
                              dirty=True)
            else:
                wb = Packet(PacketType.WRITE, victim.addr, CACHELINE_SIZE)
                wb.data = bytes(victim.data)
                self._writebacks.inc()
                self._send(wb)

    def _train_prefetcher(self, core: int, line_addr: int) -> None:
        for target in self.prefetcher.observe(core, line_addr):
            if self.l2.probe(target) or target in self._inflight_fills \
                    or target in self._prefetch_inflight:
                continue
            if self._prefetch_inflight_by_core[core] >= \
                    params.PREFETCH_MAX_INFLIGHT:
                break  # this stream's queue share is full: drop
            self._issue_prefetch(core, target)

    def _issue_prefetch(self, core: int, line_addr: int) -> None:
        if self._trace is not None:
            self._trace.instant("cache", "caches", "prefetch",
                                {"line": hex(line_addr), "core": core})
        self._prefetch_inflight.add(line_addr)
        self._prefetch_inflight_by_core[core] += 1
        waiters_list: List[Callable[[bytes, int], None]] = []
        self._inflight_fills[line_addr] = waiters_list
        epoch = self._fill_epoch.get(line_addr, 0)

        def _on_return(pkt: Packet) -> None:
            if line_addr in self._prefetch_inflight:
                self._prefetch_inflight_by_core[core] -= 1
            self._prefetch_inflight.discard(line_addr)
            self._prefetch_fills.inc()
            data = pkt.data or bytes(CACHELINE_SIZE)
            if self._inflight_fills.get(line_addr) is waiters_list:
                del self._inflight_fills[line_addr]
            if self._fill_epoch.get(line_addr, 0) == epoch:
                self._install(self.l2, line_addr, data, dirty=False)
                self._note_fill_poison(line_addr, pkt.poisoned)
            # Demand accesses that arrived meanwhile coalesced onto this
            # prefetch; hand them the data now.
            for waiter in waiters_list:
                waiter(data, self.sim.now)

        pkt = Packet(PacketType.READ, line_addr, CACHELINE_SIZE,
                     on_complete=_on_return)
        pkt.is_prefetch = True
        self._send(pkt)

    def _fetch_line(self, core: int, line_addr: int,
                    on_fill: Callable[[bytes, int], None],
                    fill_l1: bool) -> None:
        """Miss to memory, respecting the core's MSHR budget."""
        # An MSHR-full replay may run after the line has already been
        # filled; serve it from the caches instead of re-fetching.
        for cache in (self.l1s[core], self.l2):
            line = cache.lookup(line_addr, self.sim.now, touch=False)
            if line is not None:
                data = bytes(line.data)
                done = self.sim.now + params.L1_HIT_CYCLES
                if fill_l1:
                    self._install(self.l1s[core], line_addr, data,
                                  dirty=False)
                self.sim.schedule_at(done, lambda: on_fill(data, done),
                                     label="refill-hit")
                return
        waiters = self._inflight_fills.get(line_addr)
        if waiters is not None:
            # Coalesce with an in-flight fetch (demand or prefetch) for
            # the same line: an MSHR entry holds multiple targets, so no
            # extra slot is consumed.  Capture the invalidation epoch so
            # a fill poisoned after registration does not install.
            if line_addr in self._prefetch_inflight:
                self._prefetch_useful.inc()
            epoch = self._fill_epoch.get(line_addr, 0)
            waiters.append(lambda data, t: self._finish_miss(
                core, line_addr, data, t, on_fill, fill_l1,
                holds_mshr=False, epoch=epoch))
            return
        if self._outstanding[core] >= params.MAX_OUTSTANDING_MISSES:
            self._mshr_waiters[core].append(
                lambda: self._fetch_line(core, line_addr, on_fill, fill_l1))
            return
        self._outstanding[core] += 1
        waiters_list: List[Callable[[bytes, int], None]] = []
        self._inflight_fills[line_addr] = waiters_list
        epoch = self._fill_epoch.get(line_addr, 0)
        self._mem_reads.inc()

        def _on_return(pkt: Packet) -> None:
            data = pkt.data or bytes(CACHELINE_SIZE)
            finish = self.sim.now + params.L1_HIT_CYCLES
            if self._inflight_fills.get(line_addr) is waiters_list:
                del self._inflight_fills[line_addr]
            if self._fill_epoch.get(line_addr, 0) == epoch:
                self._install(self.l2, line_addr, data, dirty=False)
                self._note_fill_poison(line_addr, pkt.poisoned)
            self._finish_miss(core, line_addr, data, finish, on_fill,
                              fill_l1, epoch=epoch)
            for waiter in waiters_list:
                waiter(data, finish)

        pkt = Packet(PacketType.READ, line_addr, CACHELINE_SIZE,
                     requestor=core, on_complete=_on_return)
        self._send(pkt)

    def _finish_miss(self, core: int, line_addr: int, data: bytes,
                     finish: int, on_fill: Callable[[bytes, int], None],
                     fill_l1: bool, holds_mshr: bool = True,
                     epoch: Optional[int] = None) -> None:
        def _complete() -> None:
            # Freshness must be re-checked at install time: an MCLAZY
            # invalidation can land between the fill's return and this
            # completion event.
            fresh = (epoch is None
                     or self._fill_epoch.get(line_addr, 0) == epoch)
            if fill_l1 and fresh:
                self._install(self.l1s[core], line_addr, data, dirty=False)
            if holds_mshr:
                self._outstanding[core] -= 1
                # Drain replays while slots are free: a replay served from
                # the cache (or coalesced) consumes no slot and produces
                # no later completion, so popping just one could starve
                # the queue.
                waiters = self._mshr_waiters[core]
                while waiters and self._outstanding[core] < \
                        params.MAX_OUTSTANDING_MISSES:
                    waiters.pop(0)()
            on_fill(data, self.sim.now)

        if finish <= self.sim.now:
            _complete()
        else:
            self.sim.schedule_at(finish, _complete, label="miss-finish")

    def _note_fill_poison(self, line_addr: int, poisoned: bool) -> None:
        """Track poison for an installed fill; a clean refill clears it."""
        if poisoned:
            self.poisoned_lines.add(line_addr)
        else:
            self.poisoned_lines.discard(line_addr)

    def _send(self, pkt: Packet) -> None:
        # Every outbound packet funnels through here, so tagging once
        # covers CLWB drains, eviction writebacks, MCLAZY source flushes
        # and flush_all alike: a write of a poisoned cached line carries
        # the poison back to memory.
        if pkt.is_write and not pkt.poisoned \
                and align_down(pkt.addr, CACHELINE_SIZE) in self.poisoned_lines:
            pkt.poisoned = True
        self.send_to_memory(pkt)

    # -------------------------------------------------------------- tools
    def flush_all(self) -> None:
        """Write back and drop every line (used between experiment phases)."""
        for cache in self._all_caches():
            for line in cache.dirty_lines():
                wb = Packet(PacketType.WRITE, line.addr, CACHELINE_SIZE)
                wb.data = bytes(line.data)
                self._send(wb)
            cache.clear()

    def read_functional(self, addr: int, size: int) -> Optional[bytes]:
        """Read bytes from the caches only (None when uncached)."""
        line_addr = align_down(addr, CACHELINE_SIZE)
        for cache in self._all_caches():
            line = cache._sets[(line_addr >> _LINE_SHIFT)
                               % cache.num_sets].get(line_addr)
            if line is not None:
                offset = addr - line_addr
                return bytes(line.data[offset:offset + size])
        return None
