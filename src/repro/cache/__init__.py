"""Cache hierarchy: set-associative caches, stride prefetcher."""

from repro.cache.cache import Cache, CacheLine
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.prefetcher import StridePrefetcher

__all__ = ["Cache", "CacheLine", "CacheHierarchy", "StridePrefetcher"]
