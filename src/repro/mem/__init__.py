"""Byte-accurate physical memory."""

from repro.mem.backing_store import BackingStore

__all__ = ["BackingStore"]
