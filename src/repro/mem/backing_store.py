"""Functional (data-carrying) physical memory.

The simulator co-simulates *timing* and *function*: every physical address
has real byte contents, so lazy copies can be checked for bit-exact
equivalence with an eager ``memcpy`` oracle.  Storage is a sparse dict of
cacheline-sized ``bytearray`` blocks; untouched memory reads as zeros.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import AddressError
from repro.common.units import CACHELINE_SIZE, align_down


class BackingStore:
    """Sparse byte-accurate physical memory of a fixed capacity."""

    def __init__(self, capacity: int):
        if capacity <= 0 or capacity % CACHELINE_SIZE:
            raise AddressError(f"capacity must be a positive multiple of "
                               f"{CACHELINE_SIZE}, got {capacity}")
        self.capacity = capacity
        self._lines: Dict[int, bytearray] = {}

    # ------------------------------------------------------------ checking
    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.capacity:
            raise AddressError(
                f"physical access [{addr:#x}, {addr + size:#x}) outside "
                f"capacity {self.capacity:#x}"
            )

    # ------------------------------------------------------------- lines
    def _line(self, line_addr: int) -> bytearray:
        line = self._lines.get(line_addr)
        if line is None:
            line = bytearray(CACHELINE_SIZE)
            self._lines[line_addr] = line
        return line

    def read_line(self, addr: int) -> bytes:
        """Read the 64B cacheline containing ``addr``."""
        base = align_down(addr, CACHELINE_SIZE)
        self._check_range(base, CACHELINE_SIZE)
        line = self._lines.get(base)
        return bytes(line) if line is not None else bytes(CACHELINE_SIZE)

    def write_line(self, addr: int, data: bytes) -> None:
        """Overwrite the 64B cacheline containing ``addr``."""
        base = align_down(addr, CACHELINE_SIZE)
        self._check_range(base, CACHELINE_SIZE)
        if len(data) != CACHELINE_SIZE:
            raise AddressError(f"write_line needs {CACHELINE_SIZE}B, "
                               f"got {len(data)}")
        self._lines[base] = bytearray(data)

    # ------------------------------------------------------------- bytes
    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``addr`` (may span lines)."""
        self._check_range(addr, size)
        out = bytearray(size)
        pos = 0
        while pos < size:
            cur = addr + pos
            base = align_down(cur, CACHELINE_SIZE)
            off = cur - base
            take = min(CACHELINE_SIZE - off, size - pos)
            line = self._lines.get(base)
            if line is not None:
                out[pos:pos + take] = line[off:off + take]
            pos += take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr`` (may span lines)."""
        size = len(data)
        self._check_range(addr, size)
        pos = 0
        while pos < size:
            cur = addr + pos
            base = align_down(cur, CACHELINE_SIZE)
            off = cur - base
            take = min(CACHELINE_SIZE - off, size - pos)
            self._line(base)[off:off + take] = data[pos:pos + take]
            pos += take

    def copy(self, dst: int, src: int, size: int) -> None:
        """Eagerly move ``size`` bytes from ``src`` to ``dst`` (oracle op)."""
        self.write(dst, self.read(src, size))

    def fill(self, addr: int, size: int, value: int) -> None:
        """Set ``size`` bytes at ``addr`` to ``value``."""
        self.write(addr, bytes([value & 0xFF]) * size)

    @property
    def resident_lines(self) -> int:
        """Number of cachelines that have ever been written."""
        return len(self._lines)
