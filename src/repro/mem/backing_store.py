"""Functional (data-carrying) physical memory.

The simulator co-simulates *timing* and *function*: every physical address
has real byte contents, so lazy copies can be checked for bit-exact
equivalence with an eager ``memcpy`` oracle.  Storage is a sparse dict of
cacheline-sized ``bytearray`` blocks; untouched memory reads as zeros.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.common.errors import AddressError
from repro.common.units import CACHELINE_SIZE, align_down
from repro.sim.shard import shared


@shared
class BackingStore:
    """Sparse byte-accurate physical memory of a fixed capacity.

    Besides data, every line carries a *poison* bit modelling the platform
    response to a detected-uncorrectable ECC error (SEC-DED double-bit):
    the data is known-bad but which bits flipped is not.  Poison is set by
    the fault injector (:mod:`repro.faults`), propagated by the (MC)² copy
    paths, and cleared when a full line of fresh data overwrites it.
    """

    def __init__(self, capacity: int):
        if capacity <= 0 or capacity % CACHELINE_SIZE:
            raise AddressError(f"capacity must be a positive multiple of "
                               f"{CACHELINE_SIZE}, got {capacity}")
        self.capacity = capacity
        self._lines: Dict[int, bytearray] = {}
        self._poisoned: Set[int] = set()

    # ------------------------------------------------------------ checking
    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.capacity:
            raise AddressError(
                f"physical access [{addr:#x}, {addr + size:#x}) outside "
                f"capacity {self.capacity:#x}"
            )

    # ------------------------------------------------------------- lines
    def _line(self, line_addr: int) -> bytearray:
        line = self._lines.get(line_addr)
        if line is None:
            line = bytearray(CACHELINE_SIZE)
            self._lines[line_addr] = line
        return line

    def read_line(self, addr: int) -> bytes:
        """Read the 64B cacheline containing ``addr``."""
        base = align_down(addr, CACHELINE_SIZE)
        self._check_range(base, CACHELINE_SIZE)
        line = self._lines.get(base)
        return bytes(line) if line is not None else bytes(CACHELINE_SIZE)

    def write_line(self, addr: int, data: bytes) -> None:
        """Overwrite the 64B cacheline containing ``addr``.

        A full-line write of fresh data replaces poisoned contents, so the
        line's poison bit clears; callers moving *derived* data (lazy-copy
        materialization, poisoned writebacks) re-poison explicitly.
        """
        base = align_down(addr, CACHELINE_SIZE)
        self._check_range(base, CACHELINE_SIZE)
        if len(data) != CACHELINE_SIZE:
            raise AddressError(f"write_line needs {CACHELINE_SIZE}B, "
                               f"got {len(data)}")
        self._lines[base] = bytearray(data)
        self._poisoned.discard(base)

    # ------------------------------------------------------------- bytes
    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``addr`` (may span lines)."""
        self._check_range(addr, size)
        out = bytearray(size)
        pos = 0
        while pos < size:
            cur = addr + pos
            base = align_down(cur, CACHELINE_SIZE)
            off = cur - base
            take = min(CACHELINE_SIZE - off, size - pos)
            line = self._lines.get(base)
            if line is not None:
                out[pos:pos + take] = line[off:off + take]
            pos += take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr`` (may span lines)."""
        size = len(data)
        self._check_range(addr, size)
        pos = 0
        while pos < size:
            cur = addr + pos
            base = align_down(cur, CACHELINE_SIZE)
            off = cur - base
            take = min(CACHELINE_SIZE - off, size - pos)
            self._line(base)[off:off + take] = data[pos:pos + take]
            if take == CACHELINE_SIZE:
                self._poisoned.discard(base)
            pos += take

    def copy(self, dst: int, src: int, size: int) -> None:
        """Eagerly move ``size`` bytes from ``src`` to ``dst`` (oracle op)."""
        self.write(dst, self.read(src, size))
        # Poison travels with the data it taints.
        if self._poisoned:
            line = align_down(dst, CACHELINE_SIZE)
            end = dst + size
            while line < end:
                lo = max(line, dst)
                hi = min(line + CACHELINE_SIZE, end)
                if self.range_poisoned(src + (lo - dst), hi - lo):
                    self._poisoned.add(line)
                line += CACHELINE_SIZE

    def fill(self, addr: int, size: int, value: int) -> None:
        """Set ``size`` bytes at ``addr`` to ``value``."""
        self.write(addr, bytes([value & 0xFF]) * size)

    # ------------------------------------------------------------- poison
    def poison(self, addr: int, size: int = CACHELINE_SIZE) -> None:
        """Mark every line touching [addr, addr+size) poisoned."""
        self._check_range(addr, max(size, 1))
        line = align_down(addr, CACHELINE_SIZE)
        end = addr + max(size, 1)
        while line < end:
            self._poisoned.add(line)
            line += CACHELINE_SIZE

    def clear_poison(self, addr: int, size: int = CACHELINE_SIZE) -> None:
        """Explicitly clear poison for lines touching [addr, addr+size)."""
        line = align_down(addr, CACHELINE_SIZE)
        end = addr + max(size, 1)
        while line < end:
            self._poisoned.discard(line)
            line += CACHELINE_SIZE

    def line_poisoned(self, addr: int) -> bool:
        """True when the line containing ``addr`` is poisoned."""
        return align_down(addr, CACHELINE_SIZE) in self._poisoned

    def range_poisoned(self, addr: int, size: int) -> bool:
        """True when any line touching [addr, addr+size) is poisoned."""
        if not self._poisoned:
            return False
        line = align_down(addr, CACHELINE_SIZE)
        end = addr + max(size, 1)
        while line < end:
            if line in self._poisoned:
                return True
            line += CACHELINE_SIZE
        return False

    @property
    def poisoned_lines(self) -> Set[int]:
        """Snapshot of poisoned line addresses."""
        return set(self._poisoned)

    @property
    def resident_lines(self) -> int:
        """Number of cachelines that have ever been written."""
        return len(self._lines)
