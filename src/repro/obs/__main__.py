"""``python -m repro.obs`` — see :mod:`repro.obs.cli`."""

import sys

from repro.obs.cli import main

sys.exit(main())
