"""Periodic metrics sampler: StatGroup snapshots as a time-series.

The sampler never schedules simulator events.  It is driven by the
tracer's per-fired-event hook (every ``sample_every`` events), so the
event queue — and therefore the simulation — is identical with sampling
on or off.  Each sample appends one row to :attr:`MetricsSampler.timeline`
(the CSV/JSON timeline export) and emits curated Chrome counter events
under the ``sampler`` category (the Perfetto counter tracks).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.stats import StatGroup


def _counter_value(group: Optional[StatGroup], name: str) -> float:
    if group is None:
        return 0
    counter = group.counters.get(name)
    return counter.value if counter is not None else 0


class MetricsSampler:
    """Snapshots one :class:`~repro.system.system.System`'s stats tree."""

    __slots__ = ("system", "tracer", "timeline")

    def __init__(self, system, tracer):
        self.system = system
        self.tracer = tracer
        self.timeline: List[Dict[str, float]] = []

    def sample(self, now: int) -> None:
        """Record one timeline row and the Chrome counter samples."""
        system = self.system
        tracer = self.tracer
        row: Dict[str, float] = {"cycle": now}

        ctt = system.ctt
        if ctt is not None:
            entries = len(ctt)
            row["live.ctt_entries"] = entries
            row["live.ctt_occupancy"] = round(ctt.occupancy, 6)
            tracer.counter("sampler", "metrics", "ctt", {"entries": entries})

        flow = {"bounces": 0, "materialized": 0, "async_frees": 0,
                "drained": 0}
        for mc in system.controllers:
            prefix = f"mc{mc.channel_id}"
            row[f"live.{prefix}_wpq"] = mc.wpq_occupancy
            gauges: Dict[str, float] = {"wpq": mc.wpq_occupancy}
            bpq = getattr(mc, "bpq", None)
            if bpq is not None:
                depth = len(bpq)
                row[f"live.{prefix}_bpq"] = depth
                row[f"live.{prefix}_bpq_overflow"] = len(mc._bpq_overflow)
                gauges["bpq"] = depth
                gauges["bpq_overflow"] = len(mc._bpq_overflow)
                flow["bounces"] += _counter_value(mc.stats, "bounces")
                flow["materialized"] += _counter_value(
                    mc.stats, "src_write_copies")
                flow["async_frees"] += _counter_value(mc.stats, "async_frees")
                flow["drained"] += _counter_value(
                    mc.stats.children.get("bpq"), "drained")
            tracer.counter("sampler", "metrics", prefix, gauges)
        if ctt is not None:
            tracer.counter("sampler", "metrics", "copy_flow", flow)

        for key, value in system.stats.flatten().items():
            row[f"stat.{key}"] = value
        self.timeline.append(row)
