"""repro.obs — observability: event tracing, metrics timelines, export.

A near-zero-overhead-when-off structured tracer for the simulator
(ring-buffered, deterministic, cycle-stamped), a periodic StatGroup
sampler, and Chrome trace-event / CSV / JSON exporters.  See
``docs/OBSERVABILITY.md`` for the event schema and span taxonomy, and
``python -m repro.obs --help`` (or the ``mc2-trace`` console script) for
the CLI.

Typical library use::

    from repro.obs import TraceConfig, tracing, take_tracers
    from repro.obs.export import chrome_trace, write_chrome_trace

    with tracing(TraceConfig()):
        result = run_sequential_access("mcsquare", 0.5)
        tracer = take_tracers()[0]
    write_chrome_trace(chrome_trace(tracer), "out.trace.json")

Opt-in for sweeps: ``REPRO_TRACE=on`` (see :mod:`repro.perf.runner`).
"""

from repro.obs.tracer import (CATEGORIES, DEFAULT_CATEGORIES, TraceConfig,
                              Tracer, parse_trace_spec)
from repro.obs.runtime import (attach_tracer, configure, detach_tracer,
                               take_tracers, tracing)

__all__ = [
    "CATEGORIES",
    "DEFAULT_CATEGORIES",
    "TraceConfig",
    "Tracer",
    "parse_trace_spec",
    "attach_tracer",
    "configure",
    "detach_tracer",
    "take_tracers",
    "tracing",
]
