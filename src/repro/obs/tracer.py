"""Ring-buffered, cycle-stamped structured tracer.

The tracer is a passive observer: it never schedules simulator events and
never reads wall clocks, so a traced run produces bit-identical
simulation results to an untraced one.  Timestamps are simulation cycles
taken from the owning :class:`~repro.sim.engine.Simulator`.

Event records follow the Chrome trace-event model (see
``docs/OBSERVABILITY.md``):

- *instants* (``ph: "i"``) — a point in time on a component track;
- *completes* (``ph: "X"``) — a duration known at emission time
  (e.g. one DRAM access from first command to data return);
- *counters* (``ph: "C"``) — sampled time-series values;
- *async spans* (``ph: "b"/"n"/"e"``) — long-lived operations that begin
  and end in different callbacks, matched by ``(category, id)``.  Every
  prospective copy registered in the CTT is exactly one such span.

Records land in a bounded ring; when full, the oldest records are
dropped (and counted) so tracing long runs cannot exhaust memory.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional, Tuple

from repro.common.errors import ConfigError

#: Every category the instrumented components emit under.
CATEGORIES = frozenset({
    "engine",    # one instant per fired simulator event (firehose)
    "mc",        # base memory-controller queue events
    "mcsquare",  # (MC)2 controller: bounces, materializes, fallbacks
    "copy",      # copy-lifecycle async spans (one per CTT registration)
    "bpq",       # bounce-pending-queue park/merge/drain spans
    "cache",     # cache-hierarchy MCLAZY/MCFREE/bulk-copy handling
    "dram",      # per-access DRAM timing (firehose)
    "faults",    # fault-injector instants (bitflips, drops, link faults)
    "sampler",   # periodic StatGroup counter snapshots
    "copyengine",  # copy-backend request spans (repro.copyengine)
})

#: Categories enabled by ``REPRO_TRACE=on``.  The two firehoses
#: ("engine", "dram") are opt-in by name: they dominate ring capacity on
#: any non-trivial run without adding copy-lifecycle information.
#: "copyengine" is also opt-in, but for byte-stability: the golden
#: traces predate the backend registry, and enabling it by default
#: would add a track and spans to every default-category export.
DEFAULT_CATEGORIES = frozenset(CATEGORIES - {"engine", "dram",
                                             "copyengine"})

DEFAULT_CAPACITY = 262_144
DEFAULT_SAMPLE_EVERY = 2_048

#: Spec tokens meaning "tracing off".
OFF_TOKENS = frozenset({"", "0", "off", "false", "none"})


class TraceConfig:
    """Parsed tracing configuration (categories, ring size, cadence)."""

    __slots__ = ("categories", "capacity", "sample_every", "out_dir")

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: int = DEFAULT_CAPACITY,
                 sample_every: int = DEFAULT_SAMPLE_EVERY,
                 out_dir: Optional[str] = None):
        self.categories = frozenset(
            DEFAULT_CATEGORIES if categories is None else categories)
        self.capacity = capacity
        self.sample_every = sample_every
        self.out_dir = out_dir

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceConfig(categories={sorted(self.categories)}, "
                f"capacity={self.capacity}, sample_every={self.sample_every})")


def parse_trace_spec(spec: str, out_dir: Optional[str] = None) -> Optional[TraceConfig]:
    """Parse a ``REPRO_TRACE`` spec string into a :class:`TraceConfig`.

    Grammar (comma-separated tokens, case-insensitive):

    - ``off`` / ``0`` / ``false`` / empty → ``None`` (tracing disabled)
    - ``on`` / ``1`` / ``default``        → the default category set
    - ``all``                             → every category
    - a category name (``copy``, ``bpq``, ...) → that category only
    - ``sample=N``    → sampler cadence in fired events
    - ``capacity=N``  → ring-buffer capacity in records

    e.g. ``REPRO_TRACE=copy,bpq,sampler,sample=512``.
    """
    tokens = [t.strip().lower() for t in spec.split(",")]
    tokens = [t for t in tokens if t]
    if not tokens or all(t in OFF_TOKENS for t in tokens):
        return None
    categories: set = set()
    capacity = DEFAULT_CAPACITY
    sample_every = DEFAULT_SAMPLE_EVERY
    for token in tokens:
        if token in OFF_TOKENS:
            continue
        if token in ("on", "1", "default", "true"):
            categories |= DEFAULT_CATEGORIES
        elif token == "all":
            categories |= CATEGORIES
        elif token.startswith("sample="):
            sample_every = _parse_knob(token)
        elif token.startswith("capacity="):
            capacity = _parse_knob(token)
        elif token in CATEGORIES:
            categories.add(token)
        else:
            raise ConfigError(
                f"unknown REPRO_TRACE token {token!r}; "
                f"categories are {', '.join(sorted(CATEGORIES))}")
    if not categories:
        categories = set(DEFAULT_CATEGORIES)
    return TraceConfig(categories, capacity, sample_every, out_dir)


def _parse_knob(token: str) -> int:
    name, _, raw = token.partition("=")
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_TRACE {name}= expects an integer, got {raw!r}")
    if value <= 0:
        raise ConfigError(f"REPRO_TRACE {name}= must be positive, got {value}")
    return value


class Tracer:
    """Collects trace records for one simulated :class:`System`.

    One record is a tuple ``(ph, cat, tid, name, ts, dur, span_id,
    args)``; exporters translate them to Chrome trace-event JSON.  All
    emission methods are cheap no-ops for categories outside
    :attr:`categories`.
    """

    __slots__ = ("sim", "categories", "capacity", "sample_every", "events",
                 "dropped", "sampler", "finalized", "_tracks", "_open_spans",
                 "_since_sample")

    def __init__(self, sim, config: Optional[TraceConfig] = None):
        cfg = config or TraceConfig()
        self.sim = sim
        self.categories = cfg.categories
        self.capacity = cfg.capacity
        self.sample_every = cfg.sample_every
        self.events: Deque[tuple] = deque()
        self.dropped = 0
        # Attached by repro.obs.runtime.attach_tracer; drives the
        # metrics time-series.  Optional so unit tests can run bare.
        self.sampler = None
        self.finalized = False
        # Track name -> tid, in first-registration order (deterministic:
        # attach_tracer pre-registers the canonical component tracks).
        self._tracks: Dict[str, int] = {}
        # (category, span_id) -> (tid, name) for open async spans, in
        # begin order so finalize() closes leftovers deterministically.
        self._open_spans: Dict[Tuple[str, str], Tuple[int, str]] = {}
        self._since_sample = 0

    # ------------------------------------------------------------- plumbing
    def wants(self, category: str) -> bool:
        """True when ``category`` is being recorded."""
        return category in self.categories

    def track(self, name: str) -> int:
        """Get or assign the thread-track id for component ``name``."""
        tid = self._tracks.get(name)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[name] = tid
        return tid

    def tracks(self) -> Dict[str, int]:
        """Registered track names -> tids (insertion order)."""
        return dict(self._tracks)

    def _push(self, record: tuple) -> None:
        events = self.events
        if len(events) >= self.capacity:
            events.popleft()
            self.dropped += 1
        events.append(record)

    # ------------------------------------------------------------- emission
    def instant(self, category: str, track: str, name: str,
                args: Optional[dict] = None) -> None:
        """A point event at the current cycle on ``track``."""
        if category not in self.categories:
            return
        self._push(("i", category, self.track(track), name,
                    self.sim.now, 0, None, args))

    def complete(self, category: str, track: str, name: str,
                 start: int, end: int, args: Optional[dict] = None) -> None:
        """A duration event covering ``[start, end]`` cycles."""
        if category not in self.categories:
            return
        self._push(("X", category, self.track(track), name,
                    start, end - start, None, args))

    def counter(self, category: str, track: str, name: str,
                values: dict) -> None:
        """A counter sample (one series per key of ``values``)."""
        if category not in self.categories:
            return
        self._push(("C", category, self.track(track), name,
                    self.sim.now, 0, None, values))

    def span_begin(self, category: str, track: str, name: str,
                   span_id: str, args: Optional[dict] = None) -> None:
        """Open an async span matched by ``(category, span_id)``."""
        if category not in self.categories:
            return
        tid = self.track(track)
        self._open_spans[(category, span_id)] = (tid, name)
        self._push(("b", category, tid, name, self.sim.now, 0, span_id, args))

    def span_point(self, category: str, track: str, name: str,
                   span_id: str, args: Optional[dict] = None) -> None:
        """An instant nested inside an open async span."""
        if category not in self.categories:
            return
        self._push(("n", category, self.track(track), name,
                    self.sim.now, 0, span_id, args))

    def span_end(self, category: str, span_id: str,
                 args: Optional[dict] = None) -> None:
        """Close the async span opened under ``(category, span_id)``."""
        if category not in self.categories:
            return
        open_info = self._open_spans.pop((category, span_id), None)
        if open_info is None:
            # End without a recorded begin (e.g. the begin predates a
            # ring-buffer wrap).  Emit anyway; validators tolerate it
            # only when records were dropped.
            tid, name = self.track("orphans"), "span"
        else:
            tid, name = open_info
        self._push(("e", category, tid, name, self.sim.now, 0, span_id, args))

    # ------------------------------------------------------------ engine hook
    def on_engine_event(self, label: str, now: int) -> None:
        """Per-fired-event hook installed via ``Simulator.enable_tracing``.

        Also drives the metrics sampler every ``sample_every`` fired
        events — sampling piggybacks on event execution instead of
        scheduling its own events, so the event queue (and therefore the
        simulation) is identical with tracing on or off.
        """
        if "engine" in self.categories:
            self._push(("i", "engine", self.track("engine"),
                        label or "<unlabelled>", now, 0, None, None))
        sampler = self.sampler
        if sampler is not None:
            self._since_sample += 1
            if self._since_sample >= self.sample_every:
                self._since_sample = 0
                sampler.sample(now)

    # ------------------------------------------------------------- lifecycle
    def open_span_count(self) -> int:
        """Async spans begun but not yet ended."""
        return len(self._open_spans)

    def finalize(self) -> None:
        """Take a final metrics sample and close leftover spans.

        Spans still open (copies never resolved before the run ended)
        are ended at the final cycle with ``reason="unresolved"`` so the
        exported trace is balanced.  Idempotent.
        """
        if self.finalized:
            return
        self.finalized = True
        if self.sampler is not None:
            self.sampler.sample(self.sim.now)
        for (category, span_id), (tid, name) in list(self._open_spans.items()):
            self._push(("e", category, tid, name, self.sim.now, 0, span_id,
                        {"reason": "unresolved"}))
        self._open_spans.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Tracer(events={len(self.events)}, dropped={self.dropped}, "
                f"open_spans={len(self._open_spans)})")
