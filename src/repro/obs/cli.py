"""``mc2-trace`` / ``python -m repro.obs`` — trace workloads, inspect traces.

Subcommands:

- ``run``      run a micro workload with tracing on and export the trace
- ``summary``  aggregate one exported trace into key numbers
- ``diff``     compare two trace summaries
- ``validate`` schema-check an exported Chrome trace JSON

Examples::

    mc2-trace run --workload seq --fraction 0.5 --out seq.trace.json
    mc2-trace summary seq.trace.json
    mc2-trace diff seq.trace.json other.trace.json
    mc2-trace validate seq.trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.obs import runtime
from repro.obs.export import (chrome_trace, diff_summaries, load_trace,
                              summarize_trace, validate_chrome_trace,
                              write_chrome_trace, write_timeline_csv,
                              write_timeline_json)
from repro.obs.tracer import parse_trace_spec


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.workloads.micro.access import (run_random_access,
                                              run_sequential_access)

    config = parse_trace_spec(args.trace)
    if config is None:
        print("error: --trace resolves to 'off'; nothing to record",
              file=sys.stderr)
        return 2
    workload = (run_sequential_access if args.workload == "seq"
                else run_random_access)
    with runtime.tracing(config):
        result = workload(args.engine, args.fraction,
                          buffer_size=args.buffer_kb * 1024,
                          misalign=args.misalign)
        tracers = runtime.take_tracers()
    if not tracers:
        print("error: the workload attached no tracer", file=sys.stderr)
        return 1

    exit_code = 0
    for index, tracer in enumerate(tracers):
        suffix = f".{index}" if len(tracers) > 1 else ""
        out = args.out if not suffix else \
            args.out.replace(".trace.json", f"{suffix}.trace.json")
        trace = chrome_trace(tracer, label=f"{args.workload}-{args.engine}")
        problems = validate_chrome_trace(trace)
        path = write_chrome_trace(trace, out)
        print(f"wrote {path} ({len(trace['traceEvents'])} events, "
              f"{tracer.dropped} dropped)")
        for problem in problems:
            print(f"  schema problem: {problem}", file=sys.stderr)
            exit_code = 1
        if tracer.sampler is not None:
            if args.timeline_csv:
                print(f"wrote {write_timeline_csv(tracer.sampler.timeline, args.timeline_csv)}")
            if args.timeline_json:
                print(f"wrote {write_timeline_json(tracer.sampler.timeline, args.timeline_json)}")
        _print_summary(summarize_trace(trace))
    print(f"workload result: {json.dumps(result, sort_keys=True)}")
    return exit_code


def _print_summary(summary: dict) -> None:
    print(f"  events={summary['events']} dropped={summary['dropped']} "
          f"cycles=[{summary['ts_min']}, {summary['ts_max']}]")
    for cat, count in sorted(summary["by_category"].items()):
        print(f"  category {cat:<10} {count}")
    for cat, info in sorted(summary["spans"].items()):
        reasons = ", ".join(f"{k}={v}"
                            for k, v in sorted(info["reasons"].items()))
        print(f"  spans[{cat}] begun={info['begun']} ended={info['ended']}"
              f" ({reasons})")


def _cmd_summary(args: argparse.Namespace) -> int:
    summary = summarize_trace(load_trace(args.trace_file))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(args.trace_file)
        _print_summary(summary)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_summaries(summarize_trace(load_trace(args.trace_a)),
                          summarize_trace(load_trace(args.trace_b)))
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        for key, value in diff["added"].items():
            print(f"+ {key} = {value}")
        for key, value in diff["removed"].items():
            print(f"- {key} = {value}")
        for key, (old, new) in diff["changed"].items():
            print(f"~ {key}: {old} -> {new}")
        if not any(diff.values()):
            print("summaries are identical")
    different = any(diff.values())
    return 1 if (different and args.strict) else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    problems = validate_chrome_trace(load_trace(args.trace_file))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"{args.trace_file}: ok")
    return 1 if problems else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mc2-trace",
        description="Trace (MC)2 simulator runs and inspect exported traces")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a traced micro workload")
    run.add_argument("--workload", choices=("seq", "random"), default="seq")
    run.add_argument("--engine", default="mcsquare",
                     help="copy engine variant (default: mcsquare)")
    run.add_argument("--fraction", type=float, default=0.5,
                     help="fraction of the destination accessed")
    run.add_argument("--buffer-kb", type=int, default=256,
                     help="copy buffer size in KiB (default: 256)")
    run.add_argument("--misalign", type=int, default=16,
                     help="source misalignment in bytes (default: 16)")
    run.add_argument("--trace", default="on",
                     help="REPRO_TRACE spec (categories/knobs; default: on)")
    run.add_argument("--out", default="results/traces/obs-run.trace.json",
                     help="Chrome trace JSON output path")
    run.add_argument("--timeline-csv", default=None,
                     help="also write the sampler timeline as CSV")
    run.add_argument("--timeline-json", default=None,
                     help="also write the sampler timeline as JSON")
    run.set_defaults(fn=_cmd_run)

    summary = sub.add_parser("summary", help="summarize an exported trace")
    summary.add_argument("trace_file")
    summary.add_argument("--json", action="store_true")
    summary.set_defaults(fn=_cmd_summary)

    diff = sub.add_parser("diff", help="diff two trace summaries")
    diff.add_argument("trace_a")
    diff.add_argument("trace_b")
    diff.add_argument("--json", action="store_true")
    diff.add_argument("--strict", action="store_true",
                      help="exit 1 when the summaries differ")
    diff.set_defaults(fn=_cmd_diff)

    validate = sub.add_parser("validate",
                              help="schema-check a Chrome trace JSON")
    validate.add_argument("trace_file")
    validate.set_defaults(fn=_cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
