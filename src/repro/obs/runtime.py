"""Process-wide tracing runtime: attach, collect, export.

``System.__init__`` asks this module whether tracing is configured and,
if so, attaches a fully wired :class:`~repro.obs.tracer.Tracer` to every
instrumented component.  The configuration is process-local and is set
only by entry points that own the process (the ``mc2-trace`` CLI, the
``repro.perf`` runner via ``REPRO_TRACE``, tests) — never from ambient
state read inside a sim point, so sim-point purity and the fork-safety
rules hold.

Under ``sim_map`` each forked worker inherits the parent's
configuration, configures itself on first use, runs its points with
tracing attached, and exports each point's traces to content-addressed
filenames before returning — so a parallel sweep writes the same files
with the same bytes as a serial one, regardless of worker scheduling.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from repro.obs.tracer import TraceConfig, Tracer, parse_trace_spec

#: Default export directory for runner-driven traces, relative to the
#: repository root's ``results/`` convention used by repro.perf.
DEFAULT_TRACE_DIR = "results/traces"


class _TraceRuntime:
    """Holder for the process-local tracing state (config + live tracers).

    The ``repr`` deliberately exposes only whether tracing is configured:
    the simsan module-global audit fingerprints reprs around sim points,
    and the active-tracer list is always drained back to empty before a
    point returns.
    """

    def __init__(self) -> None:
        self.config: Optional[TraceConfig] = None
        self.active: List[Tracer] = []
        # Supervisor attempt spans (repro.resilience): host-time tuples
        # (index, name, attempt, start_s, end_s, reason, cause),
        # recorded in the parent only and drained per sweep.
        self.spans: List[tuple] = []
        self.spans_dropped = 0

    def __repr__(self) -> str:
        return f"_TraceRuntime(configured={self.config is not None})"


_STATE = _TraceRuntime()


# -------------------------------------------------------------- configure
def configure(config: Optional[TraceConfig]) -> None:
    """Set (or clear, with ``None``) the process tracing configuration."""
    _STATE.config = config


def configure_from_spec(spec: str, out_dir: Optional[str] = None) -> bool:
    """Parse and install a ``REPRO_TRACE`` spec; idempotent.

    An already-installed configuration wins (an explicit
    :func:`configure` beats an inherited environment spec).  Returns
    True when tracing is configured after the call.
    """
    if _STATE.config is None:
        _STATE.config = parse_trace_spec(spec, out_dir=out_dir)
    return _STATE.config is not None


def unconfigure() -> None:
    """Clear the configuration and forget uncollected tracers/spans."""
    _STATE.config = None
    _STATE.active.clear()
    _STATE.spans.clear()
    _STATE.spans_dropped = 0


def is_configured() -> bool:
    """True when systems built in this process attach tracers."""
    return _STATE.config is not None


def current_config() -> Optional[TraceConfig]:
    """The installed configuration, if any."""
    return _STATE.config


@contextmanager
def tracing(config: TraceConfig):
    """Scoped configuration (tests, CLI): restores the prior state."""
    previous = _STATE.config
    _STATE.config = config
    try:
        yield
    finally:
        _STATE.config = previous
        _STATE.active.clear()


# ----------------------------------------------------------------- attach
def attach_if_configured(system) -> Optional[Tracer]:
    """Called by ``System.__init__``: attach a tracer when configured."""
    config = _STATE.config
    if config is None:
        return None
    return attach_tracer(system, config)


def attach_tracer(system, config: Optional[TraceConfig] = None) -> Tracer:
    """Wire a :class:`Tracer` into every instrumented component.

    Pre-registers the component tracks in a canonical order (so track
    ids — and hence exported bytes — do not depend on which component
    emits first), installs the engine hook and the metrics sampler, and
    records the tracer for later collection by :func:`take_tracers`.
    """
    from repro.obs.sampler import MetricsSampler

    tracer = Tracer(system.sim, config or _STATE.config or TraceConfig())
    tracer.track("engine")
    if system.ctt is not None:
        tracer.track("ctt")
    tracer.track("caches")
    for mc in system.controllers:
        tracer.track(f"mc{mc.channel_id}")
        if getattr(mc, "bpq", None) is not None:
            tracer.track(f"bpq{mc.channel_id}")
        tracer.track(f"dram{mc.channel_id}")
    tracer.track("faults")
    tracer.track("metrics")
    # Appended after the canonical tracks, and only when requested by
    # name, so default-category exports keep their historical track ids.
    if tracer.wants("copyengine"):
        tracer.track("copyengine")

    system.sim.enable_tracing(tracer.on_engine_event)
    tracer.sampler = MetricsSampler(system, tracer)
    if system.ctt is not None:
        system.ctt._trace = tracer
    for mc in system.controllers:
        mc._trace = tracer
        bpq = getattr(mc, "bpq", None)
        if bpq is not None:
            bpq._trace = tracer
        mc.channel._trace = tracer
        mc.channel._track = f"dram{mc.channel_id}"
    system.hierarchy._trace = tracer
    _STATE.active.append(tracer)
    return tracer


def detach_tracer(system) -> None:
    """Remove a previously attached tracer from ``system``."""
    system.sim.disable_tracing()
    if system.ctt is not None:
        system.ctt._trace = None
    for mc in system.controllers:
        mc._trace = None
        bpq = getattr(mc, "bpq", None)
        if bpq is not None:
            bpq._trace = None
        mc.channel._trace = None
    system.hierarchy._trace = None
    system.tracer = None


def take_tracers() -> List[Tracer]:
    """Collect (and forget) every tracer attached since the last take."""
    taken = list(_STATE.active)
    _STATE.active.clear()
    return taken


# ----------------------------------------------------------------- export
def point_digest(name: str, args: tuple, kwargs: dict) -> str:
    """Deterministic short id for one sim point's parameters."""
    key = repr((name, args, tuple(sorted(kwargs.items()))))
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]


def export_point_traces(name: str, args: tuple, kwargs: dict) -> List[Path]:
    """Export every pending tracer for one completed sim point.

    Filenames are content-addressed by the point's parameters, so a
    parallel sweep and a serial sweep of the same points write the same
    files — worker identity and completion order never leak in.
    """
    from repro.obs.export import chrome_trace, write_chrome_trace

    tracers = take_tracers()
    if not tracers:
        return []
    config = _STATE.config
    out_dir = Path((config.out_dir if config is not None else None)
                   or DEFAULT_TRACE_DIR)
    digest = point_digest(name, args, kwargs)
    written: List[Path] = []
    for index, tracer in enumerate(tracers):
        suffix = f".{index}" if len(tracers) > 1 else ""
        path = out_dir / f"{name}.{digest}{suffix}.trace.json"
        trace = chrome_trace(tracer, label=f"{name}.{digest}{suffix}")
        written.append(write_chrome_trace(trace, path))
    return written


#: Cap on buffered supervisor spans; beyond it spans are counted as
#: dropped rather than growing without bound (mirrors the tracer ring).
_SPAN_CAP = 8192


def record_attempt_span(index: int, name: str, attempt: int,
                        start_s: float, end_s: float, reason: str,
                        cause: Optional[str] = None) -> None:
    """Buffer one supervisor point-attempt span (parent process only).

    ``reason`` is one of :data:`repro.resilience.report.ATTEMPT_REASONS`
    (``ok``/``timeout``/``crash``/``retried``/``quarantined``).
    Timestamps are host seconds — supervision is wall-clock territory,
    so these spans live on their own track and are exported to a
    separate ``*.spans.json`` file, never mixed into the
    cycle-stamped simulation traces.
    """
    if len(_STATE.spans) >= _SPAN_CAP:
        _STATE.spans_dropped += 1
        return
    _STATE.spans.append((index, name, attempt, start_s, end_s, reason,
                         cause))


def take_attempt_spans() -> List[tuple]:
    """Drain (and forget) the buffered supervisor attempt spans."""
    taken = list(_STATE.spans)
    _STATE.spans.clear()
    _STATE.spans_dropped = 0
    return taken


def export_attempt_spans(sweep_id: str) -> Optional[Path]:
    """Write buffered supervisor spans as a Chrome trace, then drain.

    Only exports when tracing is configured (the spans ride the same
    ``REPRO_TRACE`` opt-in); the file is
    ``<trace dir>/supervisor.<sweep_id>.spans.json`` with one "X" event
    per attempt (args: attempt number, end reason, failure cause).
    Host timestamps make the bytes run-dependent by nature, hence the
    distinct suffix — the byte-determinism contract covers only the
    ``*.trace.json`` simulation exports.
    """
    from repro.obs.export import write_chrome_trace

    dropped = _STATE.spans_dropped
    spans = take_attempt_spans()
    config = _STATE.config
    if not spans or config is None:
        return None
    out_dir = Path(config.out_dir or DEFAULT_TRACE_DIR)
    base = min(span[3] for span in spans)
    events: List[dict] = [
        {"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
         "args": {"name": f"supervisor.{sweep_id}"}},
        {"ph": "M", "pid": 2, "tid": 1, "name": "thread_name",
         "args": {"name": "attempts"}},
    ]
    for index, name, attempt, start_s, end_s, reason, cause in spans:
        args = {"index": index, "attempt": attempt, "reason": reason}
        if cause:
            args["cause"] = cause
        events.append({
            "ph": "X", "cat": "supervisor", "pid": 2, "tid": 1,
            "name": name, "ts": max(0, int((start_s - base) * 1e6)),
            "dur": max(0, int((end_s - start_s) * 1e6)), "args": args,
        })
    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"tool": "repro.resilience", "clock": "host-us",
                      "dropped_events": dropped,
                      "categories": ["supervisor"]},
    }
    return write_chrome_trace(trace,
                              out_dir / f"supervisor.{sweep_id}.spans.json")


def traced(fn, name: str):
    """Wrap a sim-point callable: run it, then export its traces."""

    def _traced_point(*args, **kwargs):
        # Export in finally: a crashed point's partial trace is exactly
        # the artifact needed to debug it, and draining the pending
        # tracers keeps a failure from leaking into the next point.
        try:
            return fn(*args, **kwargs)
        finally:
            export_point_traces(name, args, kwargs)

    return _traced_point
