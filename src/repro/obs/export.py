"""Trace exporters, validators, and summary/diff helpers.

The primary format is Chrome trace-event JSON ("JSON Object Format"):
load the file in https://ui.perfetto.dev or chrome://tracing.  ``ts``
values are **simulation cycles**, not microseconds — wall time never
enters a trace.  Serialization is canonical (sorted keys, fixed
separators), so two identical runs export byte-identical files.

Also here: a structural validator (used by the CI ``obs-smoke`` job and
``mc2-trace validate``), a trace summarizer, a summary differ, and the
CSV/JSON timeline writers for the metrics sampler.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

_ALLOWED_PH = frozenset({"M", "i", "X", "C", "b", "n", "e"})


# ------------------------------------------------------------------ export
def chrome_trace(tracer, label: str = "repro") -> dict:
    """Render a :class:`~repro.obs.tracer.Tracer` as a Chrome trace dict.

    Finalizes the tracer (closes unresolved spans, takes the last
    metrics sample) first.  One Perfetto "thread" track per component,
    ordered by registration; ``pid`` 1 is the simulated machine.
    """
    tracer.finalize()
    pid = 1
    trace_events: List[dict] = [
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
         "args": {"name": label}},
    ]
    for track, tid in sorted(tracer.tracks().items(), key=lambda kv: kv[1]):
        trace_events.append({"ph": "M", "pid": pid, "tid": tid,
                             "name": "thread_name", "args": {"name": track}})
        trace_events.append({"ph": "M", "pid": pid, "tid": tid,
                             "name": "thread_sort_index",
                             "args": {"sort_index": tid}})
    for ph, cat, tid, name, ts, dur, span_id, args in tracer.events:
        event: dict = {"ph": ph, "cat": cat, "pid": pid, "tid": tid,
                       "name": name, "ts": ts}
        if ph == "X":
            event["dur"] = dur
        elif ph == "i":
            event["s"] = "t"
        if span_id is not None:
            event["id"] = span_id
        if args is not None:
            event["args"] = args
        trace_events.append(event)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "tool": "repro.obs",
            "clock": "cycles",
            "dropped_events": tracer.dropped,
            "categories": sorted(tracer.categories),
        },
    }


def encode_chrome_trace(trace: dict) -> bytes:
    """Canonical byte encoding: same trace content -> same bytes."""
    return (json.dumps(trace, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def write_chrome_trace(trace: dict, path) -> Path:
    """Write a trace dict canonically; returns the path written."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_bytes(encode_chrome_trace(trace))
    return out


def load_trace(path) -> dict:
    """Load a Chrome trace JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ---------------------------------------------------------------- validate
def validate_chrome_trace(trace: dict) -> List[str]:
    """Structural schema check; returns a list of problems (empty = ok).

    Checks the trace-event contract Perfetto relies on: known phase
    codes, integer non-negative timestamps, ids on async events, and
    begin/end balance per ``(category, id)``.  Balance violations are
    tolerated when the ring buffer dropped records (the begin may have
    been evicted).
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return ["trace is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    dropped = 0
    other = trace.get("otherData")
    if isinstance(other, dict):
        dropped = int(other.get("dropped_events", 0) or 0)

    open_spans: Dict[tuple, int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _ALLOWED_PH:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: name missing or not a string")
        if not isinstance(event.get("pid"), int) \
                or not isinstance(event.get("tid"), int):
            errors.append(f"{where}: pid/tid missing or not integers")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errors.append(f"{where}: ts missing, non-integer, or negative")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errors.append(f"{where}: X event needs integer dur >= 0")
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                errors.append(f"{where}: C event needs numeric args")
        elif ph in ("b", "n", "e"):
            span_id = event.get("id")
            if not isinstance(span_id, str):
                errors.append(f"{where}: async event needs a string id")
                continue
            key = (event.get("cat"), span_id)
            if ph == "b":
                open_spans[key] = open_spans.get(key, 0) + 1
            elif ph == "e":
                held = open_spans.get(key, 0)
                if held == 0 and dropped == 0:
                    errors.append(
                        f"{where}: span end without begin for id {span_id!r}")
                elif held:
                    open_spans[key] = held - 1
    if dropped == 0:
        for (cat, span_id), held in sorted(open_spans.items()):
            if held:
                errors.append(
                    f"async span {cat}/{span_id!r} begun but never ended")
    return errors


# --------------------------------------------------------------- summarize
def summarize_trace(trace: dict) -> dict:
    """Aggregate a trace into a small comparable summary dict."""
    events = trace.get("traceEvents", [])
    tid_names: Dict[int, str] = {}
    by_category: Dict[str, int] = {}
    by_name: Dict[str, int] = {}
    spans: Dict[str, dict] = {}
    open_ts: Dict[tuple, int] = {}
    counters_final: Dict[str, float] = {}
    completes: Dict[str, dict] = {}
    ts_min: Optional[int] = None
    ts_max: Optional[int] = None
    total = 0

    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                tid_names[event.get("tid", 0)] = event["args"]["name"]
            continue
        total += 1
        cat = event.get("cat", "?")
        name = event.get("name", "?")
        ts = event.get("ts", 0)
        ts_min = ts if ts_min is None else min(ts_min, ts)
        ts_max = ts if ts_max is None else max(ts_max, ts)
        by_category[cat] = by_category.get(cat, 0) + 1
        by_name[f"{cat}/{name}"] = by_name.get(f"{cat}/{name}", 0) + 1
        if ph == "C":
            track = tid_names.get(event.get("tid", 0), str(event.get("tid")))
            for key, value in event.get("args", {}).items():
                counters_final[f"{track}/{name}.{key}"] = value
        elif ph == "X":
            bucket = completes.setdefault(
                f"{cat}/{name}", {"count": 0, "total_dur": 0})
            bucket["count"] += 1
            bucket["total_dur"] += event.get("dur", 0)
        elif ph in ("b", "e"):
            info = spans.setdefault(cat, {
                "begun": 0, "ended": 0, "reasons": {},
                "dur_total": 0, "dur_min": None, "dur_max": None})
            if ph == "b":
                info["begun"] += 1
                open_ts[(cat, event.get("id"))] = ts
            else:
                info["ended"] += 1
                reason = str(event.get("args", {}).get("reason", "?"))
                info["reasons"][reason] = info["reasons"].get(reason, 0) + 1
                begin = open_ts.pop((cat, event.get("id")), None)
                if begin is not None:
                    dur = ts - begin
                    info["dur_total"] += dur
                    if info["dur_min"] is None or dur < info["dur_min"]:
                        info["dur_min"] = dur
                    if info["dur_max"] is None or dur > info["dur_max"]:
                        info["dur_max"] = dur

    other = trace.get("otherData", {})
    return {
        "events": total,
        "dropped": other.get("dropped_events", 0),
        "ts_min": ts_min if ts_min is not None else 0,
        "ts_max": ts_max if ts_max is not None else 0,
        "by_category": by_category,
        "by_name": by_name,
        "spans": spans,
        "completes": completes,
        "counters_final": counters_final,
    }


def flatten_summary(summary: dict, prefix: str = "") -> Dict[str, object]:
    """Dotted-key flattening of a summary (for diffing)."""
    out: Dict[str, object] = {}
    for key, value in summary.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_summary(value, path + "."))
        else:
            out[path] = value
    return out


def diff_summaries(a: dict, b: dict) -> dict:
    """Structural diff of two summaries: added/removed/changed keys."""
    flat_a = flatten_summary(a)
    flat_b = flatten_summary(b)
    added = {k: flat_b[k] for k in sorted(set(flat_b) - set(flat_a))}
    removed = {k: flat_a[k] for k in sorted(set(flat_a) - set(flat_b))}
    changed = {k: [flat_a[k], flat_b[k]]
               for k in sorted(set(flat_a) & set(flat_b))
               if flat_a[k] != flat_b[k]}
    return {"added": added, "removed": removed, "changed": changed}


# ---------------------------------------------------------------- timeline
def write_timeline_csv(timeline: List[Dict[str, float]], path) -> Path:
    """Write sampler rows as CSV (cycle first, then sorted columns)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    columns: List[str] = ["cycle"]
    seen = {"cycle"}
    for row in timeline:
        for key in sorted(row):
            if key not in seen:
                seen.add(key)
                columns.append(key)
    lines = [",".join(columns)]
    for row in timeline:
        lines.append(",".join(
            _csv_cell(row.get(column)) for column in columns))
    out.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return out


def _csv_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def write_timeline_json(timeline: List[Dict[str, float]], path) -> Path:
    """Write sampler rows as canonical JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(timeline, sort_keys=True,
                              separators=(",", ":")) + "\n",
                   encoding="utf-8")
    return out
