"""Runtime consistency checking for (MC)² state ("paranoid mode").

A :class:`ConsistencyChecker` inspects the invariants that the design
arguments of §III-E rely on:

* the CTT is sorted with non-overlapping destination ranges, aligned
  destinations, and positive cacheline-multiple sizes;
* every parked BPQ write still has a reason to be parked — unresolved
  dependent copies or a live entry sourcing from its line (otherwise it
  should have drained: a stuck entry means lost writes);
* a cacheline is dirty in at most one private L1 (our write-invalidate
  coherence guarantees a single writer);
* no BPQ line is simultaneously parked on two controllers.

Attach it to a running system to re-verify periodically::

    checker = ConsistencyChecker(system)
    checker.attach(every_cycles=10_000)
    ...
    system.run_program(prog)
    checker.verify()          # raises ConsistencyError on violation

The periodic hook costs simulation time proportional to table sizes, so
it is off by default and intended for debugging and for the test suite.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import SimulationError
from repro.common.units import CACHELINE_SIZE
from repro.sim.shard import shared


class ConsistencyError(SimulationError):
    """An (MC)² structural invariant was violated."""


@shared
class ConsistencyChecker:
    """Invariant checks over a live :class:`~repro.system.system.System`."""

    def __init__(self, system):
        self.system = system
        self.checks_run = 0
        self._event = None

    # ------------------------------------------------------------- verify
    def verify(self) -> None:
        """Run every check once; raises :class:`ConsistencyError`.

        Failures carry the simulated cycle and how many checks had
        passed before — enough to bisect when the invariant broke.
        """
        self.checks_run += 1
        try:
            self._check_ctt()
            self._check_bpq()
            self._check_single_writer()
        except ConsistencyError as exc:
            raise ConsistencyError(
                f"{exc} (cycle {self.system.sim.now}, "
                f"check #{self.checks_run})") from exc

    def _check_ctt(self) -> None:
        ctt = self.system.ctt
        if ctt is None:
            return
        try:
            ctt.verify_invariants()
        except ConsistencyError:
            raise
        except SimulationError as exc:
            raise ConsistencyError(f"CTT invariant broken: {exc}") from exc
        if len(ctt) > ctt.capacity:
            raise ConsistencyError(
                f"CTT over capacity: {len(ctt)} > {ctt.capacity}")

    def _check_bpq(self) -> None:
        ctt = self.system.ctt
        if ctt is None:
            return
        seen_lines = set()
        for mc in self.system.controllers:
            bpq = getattr(mc, "bpq", None)
            if bpq is None:
                continue
            for entry in bpq.entries():
                if entry.line in seen_lines:
                    raise ConsistencyError(
                        f"line {entry.line:#x} parked on two controllers")
                seen_lines.add(entry.line)
                if entry.pending_copies < 0:
                    raise ConsistencyError(
                        f"negative pending copies at {entry.line:#x}")
                blocked = (entry.pending_copies > 0
                           or ctt.source_overlaps(entry.line,
                                                  CACHELINE_SIZE))
                if not blocked and self.system.sim.pending == 0:
                    # With the event queue idle nothing can ever drain it.
                    raise ConsistencyError(
                        f"BPQ entry at {entry.line:#x} is stuck: no "
                        f"pending copies and no sourcing entry")

    def _check_single_writer(self) -> None:
        dirty_owner = {}
        for i, l1 in enumerate(self.system.hierarchy.l1s):
            for line in l1.dirty_lines():
                if line.addr in dirty_owner:
                    raise ConsistencyError(
                        f"line {line.addr:#x} dirty in L1 of cores "
                        f"{dirty_owner[line.addr]} and {i}")
                dirty_owner[line.addr] = i

    # ------------------------------------------------------------- attach
    def attach(self, every_cycles: int = 10_000) -> None:
        """Schedule periodic verification on the system's simulator."""
        if every_cycles <= 0:
            raise SimulationError("check period must be positive")

        def _tick() -> None:
            # The armed event has fired: clear it first so a verify()
            # failure leaves the checker cleanly detached instead of
            # holding a stale (already-fired) event that detach() would
            # uselessly cancel.
            self._event = None
            self.verify()
            # Re-arm only while other work exists; otherwise the checker
            # would keep the simulation alive forever.
            if self.system.sim.pending > 0:
                self._event = self.system.sim.schedule(
                    every_cycles, _tick, label="consistency-check")

        self._event = self.system.sim.schedule(every_cycles, _tick,
                                               label="consistency-check")

    def detach(self) -> None:
        """Cancel the periodic check."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
