"""Hardware cost model for the (MC)² structures.

The paper sizes the CTT with CACTI 7.0 at 22nm: 2,048 × 16B = 32KB of
SRAM costs 0.14 mm², 0.79 ns access, 33.8 mW bank leakage (§IV).  CACTI
is not importable here, so this module provides a first-order SRAM
scaling model *calibrated to those published numbers* — it exists to
answer "what if the CTT were bigger/smaller?" in sensitivity studies
(Fig. 20 sweeps capacity; this prices each point), not to re-derive
CACTI.

Scaling rules of thumb for small SRAM arrays:
* area grows ~linearly with capacity (cell-dominated above a few KB),
* access time grows ~sqrt(capacity) (wordline/bitline RC),
* leakage grows ~linearly with capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import params
from repro.common.errors import ConfigError
from repro.sim.shard import shared

#: Published CACTI anchor point for the paper's configuration.
ANCHOR_BYTES = params.CTT_ENTRIES * params.CTT_ENTRY_BYTES  # 32 KiB
ANCHOR_AREA_MM2 = params.CTT_AREA_MM2                       # 0.14
ANCHOR_LATENCY_NS = params.CTT_LATENCY_NS                   # 0.79
ANCHOR_LEAKAGE_MW = params.CTT_LEAKAGE_MW                   # 33.8


@shared
@dataclass(frozen=True)
class SramEstimate:
    """Estimated cost of one SRAM structure."""

    capacity_bytes: int
    area_mm2: float
    access_ns: float
    leakage_mw: float

    def access_cycles(self, clock_ghz: float = 4.0) -> int:
        """Access latency in CPU cycles (rounded up)."""
        from repro.common.units import ns_to_cycles
        return ns_to_cycles(self.access_ns, clock_ghz)


def estimate_ctt(entries: int,
                 entry_bytes: int = params.CTT_ENTRY_BYTES) -> SramEstimate:
    """Cost of a CTT with ``entries`` entries, scaled from the anchor."""
    if entries <= 0:
        raise ConfigError("entries must be positive")
    capacity = entries * entry_bytes
    ratio = capacity / ANCHOR_BYTES
    return SramEstimate(
        capacity_bytes=capacity,
        area_mm2=ANCHOR_AREA_MM2 * ratio,
        access_ns=ANCHOR_LATENCY_NS * math.sqrt(ratio),
        leakage_mw=ANCHOR_LEAKAGE_MW * ratio,
    )


def estimate_bpq(entries: int = params.BPQ_ENTRIES) -> SramEstimate:
    """Cost of the BPQ: entries hold a full cacheline plus an address."""
    entry_bytes = 64 + 8
    capacity = entries * entry_bytes
    ratio = capacity / ANCHOR_BYTES
    return SramEstimate(
        capacity_bytes=capacity,
        area_mm2=ANCHOR_AREA_MM2 * ratio,
        access_ns=ANCHOR_LATENCY_NS * math.sqrt(max(ratio, 1e-6)),
        leakage_mw=ANCHOR_LEAKAGE_MW * ratio,
    )


def area_overhead_fraction(entries: int = params.CTT_ENTRIES,
                           die_mm2: float = 100.0) -> float:
    """CTT area as a fraction of an IO die (paper: ~0.2% of ~100 mm²)."""
    return estimate_ctt(entries).area_mm2 / die_mm2


def summarize(entries: int = params.CTT_ENTRIES) -> str:
    """Human-readable cost summary for a CTT configuration."""
    e = estimate_ctt(entries)
    return (f"CTT({entries} entries): {e.capacity_bytes // 1024}KB SRAM, "
            f"{e.area_mm2:.3f} mm^2, {e.access_ns:.2f} ns, "
            f"{e.leakage_mw:.1f} mW leakage "
            f"({100 * area_overhead_fraction(entries):.2f}% of a 100 mm^2 "
            f"IO die)")
