"""The (MC)^2 contribution: CTT, BPQ, and the extended controller."""

from repro.mcsquare.bpq import BouncePendingQueue, BpqEntry
from repro.mcsquare.controller import McSquareController
from repro.mcsquare.ctt import CopyTrackingTable, CttEntry, InsertResult
from repro.mcsquare.modeling import SramEstimate, estimate_bpq, estimate_ctt
from repro.mcsquare.verification import ConsistencyChecker, ConsistencyError

__all__ = ["CopyTrackingTable", "CttEntry", "InsertResult",
           "BouncePendingQueue", "BpqEntry", "McSquareController",
           "SramEstimate", "estimate_ctt", "estimate_bpq",
           "ConsistencyChecker", "ConsistencyError"]
