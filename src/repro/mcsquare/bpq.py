"""Bounce Pending Queue (BPQ).

The BPQ extends the memory controller's write pending queue (§III-A2).
When a write arrives for a cacheline that is the *source* of one or more
prospective copies, the write is parked here while (MC)² materializes the
dependent destination lines from the pre-write memory contents.  Once every
entry referencing the line is resolved, the parked write drains to memory.

Reads and writes from the CPU to a parked line are merged and serviced
directly from the BPQ (Fig. 9, states 3-6).  When the BPQ is full, further
source-buffer writes are stalled, creating back-pressure on the caches —
this is the effect the paper's Figure 21 sweeps.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common import params
from repro.common.errors import SimulationError
from repro.common.units import CACHELINE_SIZE, align_down
from repro.sim.packet import Packet
from repro.sim.shard import rendezvous, shard_local
from repro.sim.stats import StatGroup


@shard_local
class BpqEntry:
    """One parked source-line write awaiting lazy-copy resolution."""

    __slots__ = ("line", "data", "packets", "pending_copies", "parked_at",
                 "poisoned", "park_id")

    def __init__(self, line: int, data: bytes, packet: Packet, now: int):
        self.line = line
        self.data = bytearray(data)
        self.packets: List[Packet] = [packet]
        self.pending_copies = 0
        self.parked_at = now
        # Poison travels with the parked data: a poisoned write stays
        # poisoned through merges and into the eventual drain.
        self.poisoned = packet.poisoned
        # Per-queue serial assigned at park time; keys the trace span.
        self.park_id: Optional[int] = None

    def merge(self, data: bytes, packet: Packet) -> None:
        """Coalesce a newer full-line write to the same parked line."""
        self.data = bytearray(data)
        self.packets.append(packet)
        # The newer full-line write fully replaces the parked bytes, so
        # its poison state replaces the old one too.
        self.poisoned = packet.poisoned


@shard_local
class BouncePendingQueue:
    """Fixed-capacity queue of parked source writes for one MC."""

    def __init__(self, capacity: int = params.BPQ_ENTRIES,
                 stats: Optional[StatGroup] = None,
                 name: str = "bpq",
                 clock: Optional[Callable[[], int]] = None):
        if capacity <= 0:
            raise SimulationError("BPQ capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._clock = clock
        self._entries: Dict[int, BpqEntry] = {}
        # Optional repro.obs tracer (set by runtime.attach_tracer) and
        # the per-queue park serial that keys its spans.
        self._trace = None
        self._park_seq = 0
        stats = stats or StatGroup("bpq")
        self.stats = stats
        self._parked = stats.counter("parked", "source writes parked")
        self._merged = stats.counter("merged", "writes merged into a parked line")
        self._drained = stats.counter("drained", "parked writes drained to memory")
        self._full_stalls = stats.counter(
            "full_stalls", "writes delayed because the BPQ was full")
        # Cycle-end high-water mark, mirroring the CTT's: a same-cycle
        # park/release pair ends the cycle at the same length whichever
        # ran first, so only cycle-end lengths count toward the peak
        # (per-mutation when clockless — see _note_occupancy).
        self._peak_committed = 0
        self._peak_cycle: Optional[int] = None
        self._cycle_end_len = 0
        stats.formula("peak_occupancy", "max entries held at any cycle end",
                      lambda: float(max(self._peak_committed,
                                        len(self._entries))))
        self._dropped = stats.counter(
            "dropped", "parked writes discarded by fault injection")
        self._superseded = stats.counter(
            "superseded", "parked writes overwritten by a newer copy")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no further source write can be parked."""
        return len(self._entries) >= self.capacity

    @rendezvous("bpq-probe")
    def holds(self, addr: int) -> bool:
        """True when the line containing ``addr`` is parked."""
        return align_down(addr, CACHELINE_SIZE) in self._entries

    @rendezvous("bpq-probe")
    def get(self, addr: int) -> Optional[BpqEntry]:
        """The parked entry for the line containing ``addr``, if any."""
        return self._entries.get(align_down(addr, CACHELINE_SIZE))

    def park(self, line: int, data: bytes, packet: Packet, now: int) -> BpqEntry:
        """Park a source write; the line must not already be parked."""
        if line in self._entries:
            raise SimulationError(f"line {line:#x} already parked")
        if self.full:
            raise SimulationError("BPQ full; caller must check before parking")
        entry = BpqEntry(line, data, packet, now)
        entry.park_id = self._park_seq
        self._park_seq += 1
        self._entries[line] = entry
        self._parked.inc()
        self._note_occupancy()
        trace = self._trace
        if trace is not None:
            trace.span_begin("bpq", self.name, "parked-write",
                            self._span_id(entry), {"line": hex(line)})
        return entry

    def merge(self, line: int, data: bytes, packet: Packet) -> BpqEntry:
        """Coalesce a newer write into an already-parked line."""
        entry = self._entries[line]
        entry.merge(data, packet)
        self._merged.inc()
        trace = self._trace
        if trace is not None:
            trace.span_point("bpq", self.name, "merge",
                             self._span_id(entry))
        return entry

    def _note_occupancy(self) -> None:
        """Advance the cycle-end occupancy high-water mark.

        The first mutation of a new cycle commits the previous cycle's
        final length as a peak candidate; the read-time formula folds in
        the still-open cycle.  Clockless queues (unit tests) keep a
        per-mutation high-water mark instead.
        """
        if self._clock is None:
            if len(self._entries) > self._peak_committed:
                self._peak_committed = len(self._entries)
            return
        now = self._clock()
        if self._peak_cycle is not None and now != self._peak_cycle \
                and self._cycle_end_len > self._peak_committed:
            self._peak_committed = self._cycle_end_len
        self._peak_cycle = now
        self._cycle_end_len = len(self._entries)

    def release(self, line: int) -> BpqEntry:
        """Remove and return the parked entry (it is draining to memory)."""
        entry = self._entries.pop(line)
        self._drained.inc()
        self._note_occupancy()
        self._end_span(entry, "drained")
        return entry

    @rendezvous("bpq-supersede")
    def supersede(self, line: int) -> BpqEntry:
        """Remove a parked entry wholly overwritten by a newer copy.

        An MCLAZY accepted *after* the write parked turns the line into a
        tracked destination; the copy overwrites the full cacheline, so
        in MC-observed order (§III-E) the parked bytes must never drain —
        they would land stale data over the newer copy's tracking.
        """
        entry = self._entries.pop(line)
        self._superseded.inc()
        self._note_occupancy()
        self._end_span(entry, "superseded")
        return entry

    def drop(self, line: int) -> BpqEntry:
        """Remove a parked entry *without* draining it (fault injection).

        The parked bytes are lost; memory keeps the pre-write contents.
        Distinct from :meth:`release` so the stats tell data loss apart
        from a normal drain.
        """
        entry = self._entries.pop(line)
        self._dropped.inc()
        self._note_occupancy()
        self._end_span(entry, "dropped")
        return entry

    def record_full_stall(self) -> None:
        """Account one write delayed by a full BPQ."""
        self._full_stalls.inc()

    def entries(self) -> List[BpqEntry]:
        """Snapshot of parked entries."""
        return list(self._entries.values())

    # ------------------------------------------------------------- tracing
    def _span_id(self, entry: BpqEntry) -> str:
        return f"{self.name}:park:{entry.park_id}"

    def _end_span(self, entry: BpqEntry, reason: str) -> None:
        trace = self._trace
        if trace is not None:
            trace.span_end("bpq", self._span_id(entry), {"reason": reason})
