"""(MC)² memory controller.

Extends the baseline :class:`~repro.memctrl.controller.MemoryController`
with the paper's three mechanisms (§III):

* **Copy Tracking Table** — replicated across controllers (broadcast
  consistency is charged as interconnect latency and counted in stats);
  consulted in parallel with every MC-observed access.
* **Bounce** — a read of a tracked destination line is rerouted to the
  source line(s); the reconstructed line is returned to the core and, when
  the destination WPQ is below 75% occupancy, also written back to memory
  so future reads are served normally (the Fig. 13 "writeback"
  optimization; disable with ``bounce_writeback=False``).
* **Bounce Pending Queue** — a write to a tracked source line is parked
  while the dependent destination lines are materialized from pre-write
  memory, then drained (Fig. 9 state machine).
* **Asynchronous freeing** — once the CTT passes its fill threshold, the
  controller resolves the smallest entries in the background,
  ``parallel_frees`` at a time, to keep the table from filling (§III-A1,
  Figs. 20 and 22).

Timing is charged on the owning channels through the shared simulator, so
background copies contend for DRAM bandwidth with demand traffic, exactly
the trade-off §III-A1 discusses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common import params
from repro.common.units import CACHELINE_SIZE, align_down
from repro.dram.address_map import AddressMap
from repro.mem.backing_store import BackingStore
from repro.memctrl.controller import MemoryController
from repro.mcsquare.bpq import BouncePendingQueue
from repro.mcsquare.ctt import CopyTrackingTable, CttEntry
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.shard import shard_local
from repro.sim.stats import StatGroup


@shard_local
class McSquareController(MemoryController):
    """One memory-controller channel with (MC)² extensions."""

    def __init__(
        self,
        sim: Simulator,
        channel_id: int,
        address_map: AddressMap,
        backing: BackingStore,
        stats: StatGroup,
        ctt: CopyTrackingTable,
        bpq_entries: int = params.BPQ_ENTRIES,
        copy_threshold: float = params.CTT_COPY_THRESHOLD,
        parallel_frees: int = params.CTT_PARALLEL_FREES,
        bounce_writeback: bool = True,
        eager_async_copies: bool = False,
        wpq_entries: int = params.MC_WPQ_ENTRIES,
        rpq_entries: int = params.MC_RPQ_ENTRIES,
        ctt_retry_cycles: int = params.CTT_RETRY_CYCLES,
        ctt_retry_limit: Optional[int] = None,
        bpq_overflow_timeout: Optional[int] = None,
        inmem_layout: str = "hash",
        inmem_subarray_rows: int = params.ROWCLONE_SUBARRAY_ROWS,
    ):
        super().__init__(sim, channel_id, address_map, backing, stats,
                         wpq_entries=wpq_entries, rpq_entries=rpq_entries,
                         inmem_layout=inmem_layout,
                         inmem_subarray_rows=inmem_subarray_rows)
        self.ctt = ctt
        self.bpq = BouncePendingQueue(bpq_entries, stats.group("bpq"),
                                      name=f"bpq{channel_id}",
                                      clock=lambda: self.sim.now)
        self.copy_threshold = copy_threshold
        self.parallel_frees = parallel_frees
        self.bounce_writeback = bounce_writeback
        # Graceful-degradation budgets.  Both default to None (= the
        # paper's behaviour: retry a full CTT forever at a flat interval,
        # hold overflowed source writes indefinitely).  A finite retry
        # limit turns on exponential backoff and, once exhausted, an
        # eager MC-side copy; a finite overflow timeout resolves the
        # blocking copies eagerly so the stalled write can land.
        self.ctt_retry_cycles = ctt_retry_cycles
        self.ctt_retry_limit = ctt_retry_limit
        self.bpq_overflow_timeout = bpq_overflow_timeout
        # §VI extension: a copy engine drains the CTT continuously rather
        # than waiting for the 50% threshold (fully asynchronous copies).
        self.eager_async_copies = eager_async_copies
        self.peers: List["McSquareController"] = []  # set by the system
        # Stalled source writes as (arrival_cycle, packet): the stall
        # stat is charged at admission, and only when the write actually
        # waited past its arrival cycle (see _admit_overflow).
        self._bpq_overflow: Deque[Tuple[int, Packet]] = deque()
        self._async_inflight = 0

        self._bounces = stats.counter("bounces", "dest reads rerouted to source")
        self._double_bounces = stats.counter(
            "double_bounces", "bounces needing two source lines (misaligned)")
        self._bounce_writebacks = stats.counter(
            "bounce_writebacks", "reconstructed lines written back to memory")
        self._bounce_wb_rejected = stats.counter(
            "bounce_wb_rejected", "writebacks refused: WPQ >75% full")
        self._bounce_dropped = stats.counter(
            "bounce_dropped", "stale bounce writebacks dropped")
        self._dest_write_untracks = stats.counter(
            "dest_write_untracks", "CTT entries trimmed by destination writes")
        self._src_write_copies = stats.counter(
            "src_write_copies", "dest lines materialized due to source writes")
        self._async_frees = stats.counter(
            "async_frees", "CTT entries resolved by the async free engine")
        self._async_copied_lines = stats.counter(
            "async_copied_lines", "cachelines copied asynchronously")
        self._ctt_full_stalls = stats.counter(
            "ctt_full_stalls", "MCLAZY retries while the CTT was full")
        self._ctt_full_stall_cycles = stats.counter(
            "ctt_full_stall_cycles", "cycles MCLAZY packets waited on a full CTT")
        self._broadcasts = stats.counter(
            "broadcasts", "CTT-consistency broadcasts snooped")
        self._eager_boundary_lines = stats.counter(
            "eager_boundary_lines", "mixed-source lines resolved at insert")
        self._mcfrees = stats.counter("mcfrees", "MCFREE hints processed")
        self._ctt_full_fallbacks = stats.counter(
            "ctt_full_fallbacks",
            "MCLAZY packets degraded to eager MC-side copies")
        self._bpq_overflow_fallbacks = stats.counter(
            "bpq_overflow_fallbacks",
            "overflowed source writes unblocked by eager resolution")
        self._poison_propagations = stats.counter(
            "poison_propagations",
            "destination lines poisoned because their source was")
        self._superseded_parked = stats.counter(
            "superseded_parked_writes",
            "parked writes discarded: a newer copy overwrote their line")
        stats.formula(
            "bounce_rate", "fraction of serviced reads that bounced",
            lambda: (self._bounces.value / self._reads.value
                     if self._reads.value else 0.0))

    # =============================================================== reads
    def _handle_read(self, pkt: Packet) -> None:
        line = align_down(pkt.addr, CACHELINE_SIZE)

        # Reads to a parked source line are merged from the BPQ.
        parked = self.bpq.get(line)
        if parked is not None:
            pkt.data = bytes(parked.data)
            pkt.poisoned = parked.poisoned
            done = self.sim.now + params.MC_STATIC_LATENCY_CYCLES + 2
            self.sim.schedule_at(done, lambda: pkt.complete(self.sim.now),
                                 label="bpq-forward")
            self._reads.inc()
            return

        entry = self.ctt.lookup_dest_line(line)
        if entry is not None:
            self._bounce_read(pkt, line, entry)
            return

        self._reads.inc()
        self._service_read_from_memory(pkt)

    def _bounce_read(self, pkt: Packet, line: int, entry: CttEntry) -> None:
        """Reroute a tracked-destination read to its source line(s).

        Timing is event-driven: every DRAM access is issued at its actual
        start cycle so that concurrent bounces pipeline through the banks
        instead of reserving future bus slots in call order.
        """
        self._reads.inc()
        self._bounces.inc()
        src_start = entry.src_for_dst(line)
        src_lines = sorted({align_down(src_start, CACHELINE_SIZE),
                            align_down(src_start + CACHELINE_SIZE - 1,
                                       CACHELINE_SIZE)})
        if len(src_lines) == 2:
            self._double_bounces.inc()
        trace = self._trace
        if trace is not None:
            trace.instant("mcsquare", self._track, "bounce",
                          {"line": hex(line), "double": len(src_lines) == 2})
            if entry.copy_id is not None:
                trace.span_point("copy", "ctt", "bounce",
                                 f"copy:{entry.copy_id}",
                                 {"line": hex(line)})

        # Functional: compose the line from pre-write memory.  Poison is
        # sampled with the data: a DUE anywhere in the source window makes
        # the reconstructed line known-bad.
        data = self.backing.read(src_start, CACHELINE_SIZE)
        poisoned = self.backing.range_poisoned(src_start, CACHELINE_SIZE)
        issued_at = self.sim.now

        def _read_next(index: int) -> None:
            if index < len(src_lines):
                # Each bounce hop targets one source module; the second
                # source line (misaligned copies) requires a further
                # bounce that serializes behind the first (§III-B2).
                src_line = src_lines[index]
                owner = self._owner_of(src_line)
                extra = (params.INTERCONNECT_HOP_CYCLES
                         if owner is not self else 0)
                loc = owner.address_map.decode(src_line)
                owner.dram_request(
                    loc, (self.DRAM_RANK_BOUNCE, pkt.addr, index),
                    lambda done: self.sim.schedule_at(
                        done, lambda: _read_next(index + 1),
                        label="bounce-src-read"),
                    extra=extra)
                return
            done = self.sim.now + params.MC_STATIC_LATENCY_CYCLES
            pkt.data = data
            pkt.poisoned = poisoned
            self._read_latency.record(done - issued_at)
            self.sim.schedule_at(done, lambda: pkt.complete(self.sim.now),
                                 label="bounce-respond")
            self._maybe_bounce_writeback(line, src_start, data, poisoned)

        # The CTT lookup runs in parallel with the (preempted) access, so
        # only its latency is added before the bounce departs.
        self.sim.schedule(params.CTT_LATENCY_CYCLES,
                          lambda: _read_next(0), label="bounce-start")

    def _maybe_bounce_writeback(self, line: int, expected_src: int,
                                data: bytes, poisoned: bool = False) -> None:
        """Persist a reconstructed line so future reads hit memory.

        Skipped when disabled, when the destination WPQ is contended
        (§III-B2's 75% rule), or — checked again at completion — when the
        tracking changed while the write was in flight.
        """
        if not self.bounce_writeback:
            return
        dest_owner = self._owner_of(line)
        if dest_owner.wpq_fullness > params.WPQ_REJECT_THRESHOLD:
            self._bounce_wb_rejected.inc()
            if self._trace is not None:
                self._trace.instant("mcsquare", self._track,
                                    "bounce-wb-rejected", {"line": hex(line)})
            return

        def _complete_writeback() -> None:
            current = self.ctt.lookup_dest_line(line)
            if current is None or current.src_for_dst(line) != expected_src:
                self._bounce_dropped.inc()  # CPU overwrote D meanwhile
                return
            if self.ctt.source_overlaps(line, CACHELINE_SIZE):
                self._bounce_dropped.inc()  # D became someone's source
                return
            self.backing.write_line(line, data)
            if poisoned:
                self.backing.poison(line)
                self._poison_propagations.inc()
            self.ctt.remove_dest_range(line, CACHELINE_SIZE)
            self._broadcast_update()
            self._bounce_writebacks.inc()
            if self._trace is not None:
                self._trace.instant("mcsquare", self._track,
                                    "bounce-writeback", {"line": hex(line)})
            self._drain_ready_bpq_entries()

        wb_loc = dest_owner.address_map.decode(line)
        dest_owner.dram_request(
            wb_loc, (self.DRAM_RANK_BOUNCE_WB, line),
            lambda wb_done: self.sim.schedule_at(wb_done,
                                                 _complete_writeback,
                                                 label="bounce-writeback"))

    # ============================================================== writes
    def _handle_write(self, pkt: Packet) -> None:
        line = align_down(pkt.addr, CACHELINE_SIZE)
        if pkt.data is None:
            pkt.data = self.backing.read_line(line)

        # Writes to an already-parked line coalesce in the BPQ.
        if self.bpq.holds(line):
            self.bpq.merge(line, pkt.data, pkt)
            self._writes.inc()
            ack = self.sim.now + params.MC_STATIC_LATENCY_CYCLES
            self.sim.schedule_at(ack, lambda: pkt.complete(self.sim.now),
                                 label="bpq-merge-ack")
            return

        # Writes to a tracked source line park in the BPQ.
        if self.ctt.source_overlaps(line, CACHELINE_SIZE):
            if self.bpq.full:
                # Full-stall accounting is deferred to admission time: a
                # write admitted in its arrival cycle was never delayed
                # (a same-cycle drain freed the slot), and charging it
                # here would make the count depend on whether that drain
                # dispatched before or after this handler.
                self._bpq_overflow.append((self.sim.now, pkt))
                if self.bpq_overflow_timeout is not None:
                    # Degradation: don't wait forever for a slot — after
                    # the timeout, eagerly resolve the copies backed by
                    # this line so the write can land without parking.
                    self.sim.schedule(
                        self.bpq_overflow_timeout,
                        lambda: self._overflow_deadline(pkt),
                        label="bpq-overflow-deadline")
                return  # ack (and hence CLWB completion) is delayed
            self._park_source_write(pkt, line)
            return

        # Writes to a tracked destination stop the tracking.
        if self.ctt.lookup_dest_line(line) is not None:
            trimmed = self.ctt.remove_dest_range(line, CACHELINE_SIZE)
            self._dest_write_untracks.inc(trimmed)
            self._broadcast_update()
            self._drain_ready_bpq_entries()
        self._accept_write(pkt)

    def _park_source_write(self, pkt: Packet, line: int) -> None:
        """Fig. 9 states 3/5: hold the write, materialize dependents."""
        self._writes.inc()
        entry = self.bpq.park(line, pkt.data, pkt, self.sim.now)
        ack = self.sim.now + params.MC_STATIC_LATENCY_CYCLES
        self.sim.schedule_at(ack, lambda: pkt.complete(self.sim.now),
                             label="bpq-park-ack")

        dest_lines = self.ctt.dest_lines_for_source(line, CACHELINE_SIZE)
        entry.pending_copies = len(dest_lines)
        if not dest_lines:
            self._drain_ready_bpq_entries()
            return
        when = self.sim.now + params.CTT_LATENCY_CYCLES
        for dest_line in dest_lines:
            when = self._schedule_materialize(
                dest_line, when,
                on_done=lambda: self._copy_done_for(entry))

    def _copy_done_for(self, bpq_entry) -> None:
        bpq_entry.pending_copies -= 1
        self._drain_ready_bpq_entries()

    # ===================================================== materialization
    def _schedule_materialize(self, dest_line: int, start: int,
                              on_done=None) -> int:
        """Lazily copy one destination line; returns the finish cycle.

        Reads the needed source line(s) from memory (never the BPQ),
        composes the destination line, writes it to the destination
        channel, and trims the CTT — unless the tracking changed while the
        copy was in flight, in which case the result is dropped.
        """
        entry = self.ctt.lookup_dest_line(dest_line)
        if entry is None:
            if on_done is not None:
                self.sim.schedule_at(max(start, self.sim.now),
                                     lambda: on_done(), label="mat-noop")
            return start
        expected_src = entry.src_for_dst(dest_line)
        data = self.backing.read(expected_src, CACHELINE_SIZE)
        src_poisoned = self.backing.range_poisoned(expected_src,
                                                   CACHELINE_SIZE)
        src_lines = sorted({align_down(expected_src, CACHELINE_SIZE),
                            align_down(expected_src + CACHELINE_SIZE - 1,
                                       CACHELINE_SIZE)})
        steps = src_lines + [dest_line]  # reads, then the copy write

        def _step(index: int) -> None:
            if index < len(steps):
                addr = steps[index]
                owner = self._owner_of(addr)
                loc = owner.address_map.decode(addr)
                owner.dram_request(
                    loc, (self.DRAM_RANK_MATERIALIZE, dest_line, index),
                    lambda done: self.sim.schedule_at(
                        done, lambda: _step(index + 1),
                        label="materialize-step"))
                return
            current = self.ctt.lookup_dest_line(dest_line)
            if (current is not None
                    and current.src_for_dst(dest_line) == expected_src):
                # The line itself may back other prospective copies (it
                # became a destination after an older copy sourced from
                # it); resolve those from its pre-write contents first,
                # then land this copy.
                if self.ctt.source_overlaps(dest_line, CACHELINE_SIZE):
                    self._resolve_dependents_of(dest_line, self.sim.now,
                                                set())
                self.backing.write_line(dest_line, data)
                if src_poisoned:
                    self.backing.poison(dest_line)
                    self._poison_propagations.inc()
                self.ctt.remove_dest_range(dest_line, CACHELINE_SIZE)
                self._broadcast_update()
                self._src_write_copies.inc()
                if self._trace is not None:
                    self._trace.instant("mcsquare", self._track,
                                        "materialize",
                                        {"line": hex(dest_line)})
            else:
                self._bounce_dropped.inc()
                if self._trace is not None:
                    self._trace.instant("mcsquare", self._track,
                                        "materialize-dropped",
                                        {"line": hex(dest_line)})
            if on_done is not None:
                on_done()

        begin = max(start, self.sim.now)
        self.sim.schedule_at(begin, lambda: _step(0),
                             label="materialize-line")
        # Estimated completion for the caller's pacing of further lines.
        return begin + params.DRAM_ROW_HIT_CYCLES

    def _drain_ready_bpq_entries(self) -> None:
        """Drain parked writes whose line no longer backs any copy.

        A parked entry's dependent destinations are re-derived here: the
        CTT may have been rewritten (a newer overlapping copy) between
        parking and materialization, leaving the original copies dropped
        as stale while *new* entries still source from the parked line —
        those must be materialized too or the entry would wait forever.
        """
        for entry in self.bpq.entries():
            if entry.pending_copies > 0:
                continue
            if self.ctt.source_overlaps(entry.line, CACHELINE_SIZE):
                # Still backing copies: issue the (possibly refreshed)
                # materializations rather than waiting passively.
                dest_lines = self.ctt.dest_lines_for_source(
                    entry.line, CACHELINE_SIZE)
                if dest_lines:
                    entry.pending_copies = len(dest_lines)
                    when = self.sim.now + params.CTT_LATENCY_CYCLES
                    for dest_line in dest_lines:
                        when = self._schedule_materialize(
                            dest_line, when,
                            on_done=lambda e=entry: self._copy_done_for(e))
                continue
            self.bpq.release(entry.line)
            drained = Packet(PacketType.WRITE, entry.line, CACHELINE_SIZE)
            drained.data = bytes(entry.data)
            drained.poisoned = entry.poisoned
            # A parked line may itself be a tracked destination (the
            # write "completes" now): stop tracking it.
            if self.ctt.lookup_dest_line(entry.line) is not None:
                trimmed = self.ctt.remove_dest_range(entry.line,
                                                     CACHELINE_SIZE)
                self._dest_write_untracks.inc(trimmed)
                self._broadcast_update()
            self._accept_write(drained)
            self._admit_overflow()

    def _admit_overflow(self) -> None:
        """Move stalled source writes into freed BPQ slots."""
        while self._bpq_overflow and not self.bpq.full:
            arrived, pkt = self._bpq_overflow.popleft()
            if self.sim.now > arrived:
                self.bpq.record_full_stall()
            line = align_down(pkt.addr, CACHELINE_SIZE)
            if self.bpq.holds(line):
                self.bpq.merge(line, pkt.data, pkt)
                pkt.complete(self.sim.now)
            elif self.ctt.source_overlaps(line, CACHELINE_SIZE):
                self._park_source_write(pkt, line)
            else:
                self._accept_write(pkt)  # tracking resolved while waiting

    def _overflow_deadline(self, pkt: Packet) -> None:
        """Bounded-wait fallback for a source write stuck in overflow.

        If ``pkt`` is still waiting when its deadline fires, the copies
        that draw from its line are resolved eagerly (from the pre-write
        memory contents, which is what they would have snapshotted) and
        the write lands directly, bypassing the BPQ.
        """
        waiting = next((item for item in self._bpq_overflow
                        if item[1] is pkt), None)
        if waiting is None:
            return  # admitted (or already handled) in the meantime
        self._bpq_overflow.remove(waiting)
        if self.sim.now > waiting[0]:
            self.bpq.record_full_stall()
        self._bpq_overflow_fallbacks.inc()
        line = align_down(pkt.addr, CACHELINE_SIZE)
        if self._trace is not None:
            self._trace.instant("mcsquare", self._track,
                                "bpq-overflow-deadline",
                                {"line": hex(line)})
        self._resolve_dependents_of(line, self.sim.now, set())
        if self.ctt.lookup_dest_line(line) is not None:
            trimmed = self.ctt.remove_dest_range(line, CACHELINE_SIZE)
            self._dest_write_untracks.inc(trimmed)
        self._broadcast_update()
        self._accept_write(pkt)
        self._drain_ready_bpq_entries()

    # ============================================================ control
    def _handle_control(self, pkt: Packet) -> None:
        if pkt.ptype is PacketType.MCLAZY:
            self._handle_mclazy(pkt)
        elif pkt.ptype is PacketType.MCFREE:
            self._mcfrees.inc()
            self.ctt.free_hint(pkt.addr, pkt.size)
            self._broadcast_update()
            self._drain_ready_bpq_entries()
            done = self.sim.now + params.BROADCAST_CYCLES
            self.sim.schedule_at(done, lambda: pkt.complete(self.sim.now),
                                 label="mcfree-ack")
        else:
            super()._handle_control(pkt)

    def _handle_mclazy(self, pkt: Packet, attempt: int = 0) -> None:
        """Insert a prospective copy, stalling while sources are parked
        or the table is full.

        With ``ctt_retry_limit`` unset (the default) this retries forever
        at a flat interval, exactly the paper's stall behaviour.  With a
        finite limit the retry interval backs off exponentially (capped)
        and, once the budget is exhausted, the copy degrades to an eager
        MC-side ``memcpy`` — slower, but bit-identical and guaranteed to
        complete even if the table never drains.
        """
        src = pkt.src_addr
        assert src is not None
        blocked = any(self.bpq.holds(line) or any(
            peer.bpq.holds(line) for peer in self.peers)
            for line in self._lines_of(src, pkt.size))
        if blocked or not self._try_insert(pkt):
            limit = self.ctt_retry_limit
            if limit is not None and attempt >= limit:
                self._eager_copy_fallback(pkt)
                return
            retry = self.ctt_retry_cycles
            if limit is not None:
                retry *= min(2 ** attempt, params.CTT_RETRY_BACKOFF_CAP)
            self._ctt_full_stalls.inc()
            self._ctt_full_stall_cycles.inc(retry)
            if self._trace is not None:
                self._trace.instant("mcsquare", self._track, "mclazy-stall",
                                    {"attempt": attempt, "retry": retry,
                                     "blocked": blocked})
            self.sim.schedule(retry,
                              lambda: self._handle_mclazy(pkt, attempt + 1),
                              label="mclazy-retry")
            return
        if self._trace is not None:
            self._trace.instant("mcsquare", self._track, "mclazy",
                                {"dst": hex(pkt.addr),
                                 "src": hex(pkt.src_addr),
                                 "size": pkt.size})
        self._broadcast_update()
        done = self.sim.now + params.BROADCAST_CYCLES
        self.sim.schedule_at(done, lambda: pkt.complete(self.sim.now),
                             label="mclazy-ack")
        self._maybe_start_async_free(force=self.eager_async_copies)

    def _try_insert(self, pkt: Packet) -> bool:
        result = self.ctt.insert(pkt.addr, pkt.src_addr, pkt.size)
        if not result.ok:
            self._maybe_start_async_free(force=True)
            return False
        # Parked writes inside the destination range reached the MC
        # before this MCLAZY, so the copy wholly overwrites them (dst
        # and size are line-aligned).  Discard them now — draining them
        # later would land stale bytes over the new tracking and untrack
        # it (the eager-line resolution below can trigger such a drain).
        self._discard_superseded_parked(pkt.addr, pkt.size)
        # Boundary lines with mixed sources are copied right away, in
        # three phases.  First snapshot every composition from the
        # pre-insert memory image: a redirected piece may source from a
        # line that is itself a tracked destination of this same insert
        # (dst overlapping the redirect target), which the dependent
        # resolution below legitimately rewrites — and the boundary
        # lines of one insert may source from each other's pre-write
        # bytes.  Composing up front reads only, so it cannot disturb
        # the resolution; writing per-line would read clobbered data.
        when = self.sim.now
        staged = []
        for dest_line, pieces in result.eager_lines:
            composed = bytearray(self.backing.read_line(dest_line))
            poisoned = self.backing.line_poisoned(dest_line)
            for src_byte, offset, length in pieces:
                composed[offset:offset + length] = \
                    self.backing.read(src_byte, length)
                poisoned = poisoned or \
                    self.backing.range_poisoned(src_byte, length)
                owner = self._owner_of(src_byte)
                loc = owner.address_map.decode(
                    align_down(src_byte, CACHELINE_SIZE))
                when = owner.channel.access(loc, when)
            staged.append((dest_line, bytes(composed), poisoned))
        # The eager writes land in memory now, so any older copy still
        # sourcing from one of these lines must materialize first —
        # for *every* boundary line, before any eager write.
        for dest_line, _pieces in result.eager_lines:
            self._eager_boundary_lines.inc()
            when = self._resolve_dependents_of(dest_line, when, set())
        for dest_line, composed, poisoned in staged:
            self.backing.write_line(dest_line, composed)
            if poisoned:
                self.backing.poison(dest_line)
                self._poison_propagations.inc()
            self.ctt.remove_dest_range(dest_line, CACHELINE_SIZE)
            dest_owner = self._owner_of(dest_line)
            when = dest_owner.channel.access(
                dest_owner.address_map.decode(dest_line), when)
        return True

    def _eager_copy_fallback(self, pkt: Packet) -> None:
        """Degrade an un-insertable MCLAZY to an eager MC-side copy.

        Fired when the bounded retry budget is exhausted (CTT permanently
        full, or the source parked for too long).  The controller performs
        the copy itself, line by line, charging DRAM timing serially on
        the owning channels — much slower than a CTT insert, but the
        result is bit-identical to what the lazy path would eventually
        have produced, and the requesting core is guaranteed to unblock.
        """
        dst, src, size = pkt.addr, pkt.src_addr, pkt.size
        self._ctt_full_fallbacks.inc()
        if self._trace is not None:
            self._trace.instant("mcsquare", self._track,
                                "mclazy-eager-fallback",
                                {"dst": hex(dst), "src": hex(src),
                                 "size": size})
        dest_lines = self._lines_of(dst, size)
        # Snapshot the MC-visible source image (parked BPQ data wins over
        # tracked-destination redirects over plain memory) *before* any
        # of our own writes can disturb overlapping ranges.
        data = self._visible_bytes(src, size)
        line_poison = [
            self._visible_poisoned(src + off, CACHELINE_SIZE)
            for off in range(0, size, CACHELINE_SIZE)]

        when = self.sim.now
        # Destination lines that back *other* prospective copies must
        # materialize from their pre-overwrite contents first.
        for dest_line in dest_lines:
            if self.ctt.source_overlaps(dest_line, CACHELINE_SIZE):
                when = self._resolve_dependents_of(dest_line, when, set())
        # The eager copy overwrites any tracking of the destination, and
        # supersedes parked writes inside it just like a CTT insert does.
        self.ctt.remove_dest_range(dst, size)
        self._discard_superseded_parked(dst, size)

        for index, dest_line in enumerate(dest_lines):
            off = index * CACHELINE_SIZE
            self.backing.write_line(dest_line,
                                    data[off:off + CACHELINE_SIZE])
            if line_poison[index]:
                self.backing.poison(dest_line)
                self._poison_propagations.inc()
            src_start = src + off
            for src_line in sorted({align_down(src_start, CACHELINE_SIZE),
                                    align_down(src_start + CACHELINE_SIZE - 1,
                                               CACHELINE_SIZE)}):
                owner = self._owner_of(src_line)
                when = owner.channel.access(
                    owner.address_map.decode(src_line), when)
            dest_owner = self._owner_of(dest_line)
            when = dest_owner.channel.access(
                dest_owner.address_map.decode(dest_line), when)

        self._broadcast_update()
        self._drain_ready_bpq_entries()
        self.sim.schedule_at(max(when, self.sim.now),
                             lambda: pkt.complete(self.sim.now),
                             label="mclazy-eager-fallback")

    def _visible_bytes(self, addr: int, size: int) -> bytes:
        """MC-visible memory image of [addr, addr+size).

        Composes, newest first: parked BPQ data (acked writes held for
        resolution), tracked-destination redirects (what a bounce read
        returns), then the backing store.
        """
        out = bytearray(size)
        pos = 0
        while pos < size:
            cur = addr + pos
            line = align_down(cur, CACHELINE_SIZE)
            off = cur - line
            take = min(CACHELINE_SIZE - off, size - pos)
            parked = self._parked_entry(line)
            if parked is not None:
                out[pos:pos + take] = parked.data[off:off + take]
            else:
                entry = self.ctt.lookup_dest_line(line)
                if entry is not None:
                    out[pos:pos + take] = self.backing.read(
                        entry.src_for_dst(cur), take)
                else:
                    out[pos:pos + take] = self.backing.read(cur, take)
            pos += take
        return bytes(out)

    def _visible_poisoned(self, addr: int, size: int) -> bool:
        """Whether any MC-visible byte in [addr, addr+size) is poisoned."""
        pos = 0
        while pos < size:
            cur = addr + pos
            line = align_down(cur, CACHELINE_SIZE)
            take = min(CACHELINE_SIZE - (cur - line), size - pos)
            parked = self._parked_entry(line)
            if parked is not None:
                if parked.poisoned:
                    return True
            else:
                entry = self.ctt.lookup_dest_line(line)
                if entry is not None:
                    if self.backing.range_poisoned(
                            entry.src_for_dst(cur), take):
                        return True
                elif self.backing.line_poisoned(line):
                    return True
            pos += take
        return False

    def _discard_superseded_parked(self, dst: int, size: int) -> None:
        """Drop parked writes that a newly accepted copy wholly overwrites.

        A parked write was received (and acked) before the copy, so in
        MC-observed order the copy — which rewrites every byte of its
        line-aligned destination range — supersedes it.  Without this,
        the parked write would eventually drain through
        :meth:`_drain_ready_bpq_entries`, land its stale bytes, and
        untrack the newer copy's destination.
        """
        for line in self._lines_of(dst, size):
            for mc in [self] + self.peers:
                if mc.bpq.holds(line):
                    mc.bpq.supersede(line)
                    self._superseded_parked.inc()

    def _parked_entry(self, line: int):
        """The BPQ entry parking ``line`` on any controller, if any."""
        entry = self.bpq.get(line)
        if entry is not None:
            return entry
        for peer in self.peers:
            entry = peer.bpq.get(line)
            if entry is not None:
                return entry
        return None

    def _resolve_dependents_of(self, line: int, when: int,
                               visited: set) -> int:
        """Synchronously materialize every tracked destination that still
        draws bytes from ``line``, recursively, before ``line``'s memory
        is overwritten.  Returns the updated timing cursor."""
        if line in visited:
            return when
        visited.add(line)
        for dep in self.ctt.dest_lines_for_source(line, CACHELINE_SIZE):
            if self.ctt.lookup_dest_line(dep) is None:
                continue
            when = self._resolve_dependents_of(dep, when, visited)
            # Re-fetch after recursing: a self-sourcing entry (its source
            # range overlaps its own destination) appears among its *own*
            # dependents, so the recursion can materialize and remove it.
            # A stale pre-recursion snapshot would re-materialize ``dep``
            # from the bytes the first write just landed.
            entry = self.ctt.lookup_dest_line(dep)
            if entry is None:
                continue
            src_start = entry.src_for_dst(dep)
            data = self.backing.read(src_start, CACHELINE_SIZE)
            src_poisoned = self.backing.range_poisoned(src_start,
                                                       CACHELINE_SIZE)
            for src_line in sorted({align_down(src_start, CACHELINE_SIZE),
                                    align_down(src_start + CACHELINE_SIZE - 1,
                                               CACHELINE_SIZE)}):
                owner = self._owner_of(src_line)
                when = owner.channel.access(
                    owner.address_map.decode(src_line), when)
            self.backing.write_line(dep, data)
            if src_poisoned:
                self.backing.poison(dep)
                self._poison_propagations.inc()
            self.ctt.remove_dest_range(dep, CACHELINE_SIZE)
            self._src_write_copies.inc()
            owner = self._owner_of(dep)
            when = owner.channel.access(owner.address_map.decode(dep),
                                        when)
        self._drain_ready_bpq_entries()
        return when

    # ====================================================== async freeing
    def _maybe_start_async_free(self, force: bool = False) -> None:
        """Resolve smallest entries in the background past the threshold."""
        while (self._async_inflight < self.parallel_frees
               and (force or self.ctt.occupancy >= self.copy_threshold)
               and len(self.ctt) > 0):
            entry = self._pop_freeable()
            if entry is None:
                return
            self._async_inflight += 1
            self._resolve_entry_async(entry)
            force = False

    def _pop_freeable(self) -> Optional[CttEntry]:
        """Smallest active entry whose destination is not a source."""
        best: Optional[CttEntry] = None
        for entry in self.ctt.entries:
            if not entry.active:
                continue
            if self.ctt.source_overlaps(entry.dst, entry.size):
                continue
            if best is None or entry.size < best.size:
                best = entry
        if best is not None:
            best.active = False
        return best

    def _resolve_entry_async(self, entry: CttEntry) -> None:
        """Copy one claimed entry line by line in the background."""
        if self._trace is not None:
            self._trace.instant("mcsquare", self._track, "async-free",
                                {"dst": hex(entry.dst),
                                 "size": entry.size})
        lines = [entry.dst + off
                 for off in range(0, entry.size, CACHELINE_SIZE)]
        when = self.sim.now
        remaining = {"n": len(lines)}

        def _line_done() -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._async_inflight -= 1
                self._async_frees.inc()
                self._drain_ready_bpq_entries()
                self._maybe_start_async_free()

        for line in lines:
            self._async_copied_lines.inc()
            when = self._schedule_materialize(line, when, on_done=_line_done)

    # ============================================================ helpers
    def _owner_of(self, addr: int) -> "McSquareController":
        channel = self.address_map.channel_of(addr)
        if channel == self.channel_id:
            return self
        for peer in self.peers:
            if peer.channel_id == channel:
                return peer
        return self  # single-controller configurations

    def _broadcast_update(self) -> None:
        self._broadcasts.inc(max(1, len(self.peers)))

    @staticmethod
    def _lines_of(addr: int, size: int) -> List[int]:
        first = align_down(addr, CACHELINE_SIZE)
        last = align_down(addr + size - 1, CACHELINE_SIZE)
        return list(range(first, last + CACHELINE_SIZE, CACHELINE_SIZE))
