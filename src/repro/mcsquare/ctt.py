"""Copy Tracking Table (CTT) — the core (MC)² hardware structure.

The CTT tracks *prospective copies*: (destination, source, size) triples
registered by ``MCLAZY`` and resolved lazily.  This module implements the
table logic of the paper's §III-A1 exactly:

* **Destination uniqueness** — tracked destination ranges never overlap.
  Inserting a copy whose destination overlaps an existing entry trims (or
  splits) the existing entry, because the new copy overwrites that data.
* **Source redirection (no copy chains)** — if part of the new copy's
  *source* is itself a tracked destination, the new entry is split so the
  overlapping part points directly at the original source (A→B then B→C is
  stored as A→C).
* **Merging** — entries with contiguous destination *and* source ranges
  are coalesced into one (element-by-element array copies become a single
  entry).
* **Capacity** — a fixed number of entries (2,048 × 16B = 32KB SRAM in the
  paper; CACTI gives 0.79 ns access, 0.14 mm², 33.8 mW leakage).  When an
  insert does not fit, the caller (the MC) stalls the CPU and the
  asynchronous free engine makes room.

Destination ranges are cacheline-aligned with cacheline-multiple sizes
(enforced by the MCLAZY ISA contract); sources may be arbitrarily
misaligned, in which case one destination line draws from two source lines.

Entries are replicated consistently across memory controllers via
interconnect broadcast; this class models the replicated content once.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common import params
from repro.common.errors import AlignmentError, ConfigError, SimulationError
from repro.common.units import CACHELINE_SIZE, PAGE_SIZE, align_down
from repro.sim.shard import shared
from repro.sim.stats import StatGroup


@shared
class InsertResult:
    """Outcome of a CTT insert.

    ``ok`` is False when the table was full (MC stalls the requestor).
    ``eager_lines`` lists destination lines that could not be tracked by a
    single entry (mixed sources after redirection) and must be copied
    immediately: ``(dst_line, [(src_byte_addr, line_offset, length), ...])``.
    """

    __slots__ = ("ok", "eager_lines")

    def __init__(self, ok: bool,
                 eager_lines: Optional[List[Tuple[int, List[Tuple[int, int, int]]]]] = None):
        self.ok = ok
        self.eager_lines = eager_lines or []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InsertResult(ok={self.ok}, eager={len(self.eager_lines)})"


@shared
class CttEntry:
    """One prospective copy: ``size`` bytes from ``src`` to ``dst``.

    ``dst`` is cacheline-aligned and ``size`` is a cacheline multiple;
    ``src`` may be misaligned.  ``active`` mirrors the paper's A-bit (an
    entry being resolved by the async free engine is still consulted but
    not re-claimed).
    """

    __slots__ = ("dst", "src", "size", "active", "copy_id")

    def __init__(self, dst: int, src: int, size: int,
                 copy_id: Optional[int] = None):
        # Deliberately no module-global serial id (see sim.packet): that
        # is shared mutable state across forked sweep workers.  copy_id
        # is a *per-table* sequence tying every entry (and trim remnant)
        # back to the MCLAZY registration that created it, for the
        # copy-lifecycle stats and trace spans.
        self.dst = dst
        self.src = src
        self.size = size
        self.active = True
        self.copy_id = copy_id

    @property
    def dst_end(self) -> int:
        """One past the last tracked destination byte."""
        return self.dst + self.size

    @property
    def src_end(self) -> int:
        """One past the last tracked source byte."""
        return self.src + self.size

    def src_for_dst(self, dst_addr: int) -> int:
        """Source byte address backing destination byte ``dst_addr``."""
        return self.src + (dst_addr - self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CttEntry(dst={self.dst:#x}, src={self.src:#x}, "
                f"size={self.size})")


@shared
class CopyTrackingTable:
    """The replicated CTT content plus its management logic."""

    def __init__(self, capacity: int = params.CTT_ENTRIES,
                 stats: Optional[StatGroup] = None,
                 max_entry_size: int = params.CTT_MAX_COPY_SIZE,
                 clock: Optional[Callable[[], int]] = None):
        if capacity <= 0:
            raise ConfigError("CTT capacity must be positive")
        self.capacity = capacity
        self.max_entry_size = max_entry_size
        # Cycle source for copy-lifecycle stats (the System passes the
        # simulator clock); without one, lifetimes record as 0.
        self._clock = clock
        # Optional repro.obs tracer; set by runtime.attach_tracer.
        self._trace = None
        # Entries sorted by destination start; destinations never overlap.
        # ``_starts`` mirrors ``[e.dst for e in _entries]`` so the
        # per-access destination lookup can bisect without rebuilding the
        # key list (entry dst is immutable; only _add/_remove mutate).
        self._entries: List[CttEntry] = []
        self._starts: List[int] = []
        # Coarse per-page reference counts over *source* ranges, used to
        # reject the common case (a write that touches no tracked source)
        # in O(1) instead of scanning the table.
        self._src_pages: Dict[int, int] = {}
        stats = stats or StatGroup("ctt")
        self.stats = stats
        self._inserts = stats.counter("inserts", "prospective copies inserted")
        self._insert_fails = stats.counter(
            "insert_fails", "inserts refused because the table was full")
        self._merges = stats.counter("merges", "entries coalesced")
        self._redirects = stats.counter(
            "redirects", "insert segments redirected to an older source")
        self._dest_evictions = stats.counter(
            "dest_evictions", "existing entries trimmed by a new destination")
        self._removed_bytes = stats.counter(
            "removed_bytes", "tracked bytes resolved or dropped")
        # Peak occupancy is a high-water mark over *cycle-end* states.
        # Two same-cycle operations (an insert racing a trim) end the
        # cycle at the same length whichever ran first, but the transient
        # mid-cycle maximum depends on their order — so the peak commits
        # the previous cycle's final length when the first mutation of a
        # new cycle arrives, and the read-time formula folds in the
        # still-open cycle.  Without a clock it keeps the plain
        # per-mutation high-water mark.
        self._peak_committed = 0
        self._peak_cycle: Optional[int] = None
        self._cycle_end_len = 0
        stats.formula("peak_occupancy", "max entries held at any cycle end",
                      lambda: float(max(self._peak_committed,
                                        len(self._entries))))
        self._copies_resolved = stats.counter(
            "copies_resolved", "registered copies fully resolved/untracked")
        self._copy_lifetime = stats.distribution(
            "copy_lifetime", "cycles from registration to full resolution")
        # Copy-lifecycle bookkeeping: one logical copy per successful
        # insert().  Live entry counts per copy id; a copy resolves when
        # its count returns to zero at the end of a public operation
        # (transient zeroes inside a trim-then-readd are not ends).
        self._copy_seq = 0
        self._copy_live: Dict[int, int] = {}
        self._copy_registered: Dict[int, int] = {}
        self._resolved_pending: List[Tuple[int, str]] = []

    # ------------------------------------------------------------- basics
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> float:
        """Fill level as a fraction of capacity."""
        return len(self._entries) / self.capacity

    @property
    def entries(self) -> Tuple[CttEntry, ...]:
        """Snapshot of current entries (sorted by destination)."""
        return tuple(self._entries)

    def tracked_bytes(self) -> int:
        """Total destination bytes currently tracked."""
        return sum(e.size for e in self._entries)

    # ------------------------------------------------------ page refcounts
    def _src_pages_of(self, entry: CttEntry) -> Iterable[int]:
        first = entry.src // PAGE_SIZE
        last = (entry.src_end - 1) // PAGE_SIZE
        return range(first, last + 1)

    def _index_src(self, entry: CttEntry) -> None:
        for page in self._src_pages_of(entry):
            self._src_pages[page] = self._src_pages.get(page, 0) + 1

    def _unindex_src(self, entry: CttEntry) -> None:
        for page in self._src_pages_of(entry):
            count = self._src_pages[page] - 1
            if count:
                self._src_pages[page] = count
            else:
                del self._src_pages[page]

    # --------------------------------------------------------- raw add/rm
    def _add(self, entry: CttEntry) -> None:
        index = bisect_right(self._starts, entry.dst)
        self._entries.insert(index, entry)
        self._starts.insert(index, entry.dst)
        self._index_src(entry)
        self._note_occupancy()
        if entry.copy_id is not None:
            self._copy_live[entry.copy_id] = \
                self._copy_live.get(entry.copy_id, 0) + 1

    def _remove(self, entry: CttEntry, reason: str = "resolved") -> None:
        index = self._entries.index(entry)
        del self._entries[index]
        del self._starts[index]
        self._unindex_src(entry)
        self._note_occupancy()
        cid = entry.copy_id
        if cid is not None and cid in self._copy_live:
            count = self._copy_live[cid] - 1
            self._copy_live[cid] = count
            if count <= 0:
                self._resolved_pending.append((cid, reason))

    def _note_occupancy(self) -> None:
        """Advance the cycle-end occupancy high-water mark.

        Called after every raw add/remove: the first mutation of a new
        cycle commits the previous cycle's final length as a peak
        candidate, then the running end-of-cycle length is refreshed.
        """
        if self._clock is None:
            # Clockless (unit tests drive the table directly): there is
            # no cycle structure, so keep a per-mutation high-water mark.
            if len(self._entries) > self._peak_committed:
                self._peak_committed = len(self._entries)
            return
        now = self._clock()
        if self._peak_cycle is not None and now != self._peak_cycle \
                and self._cycle_end_len > self._peak_committed:
            self._peak_committed = self._cycle_end_len
        self._peak_cycle = now
        self._cycle_end_len = len(self._entries)

    def _flush_resolved(self) -> None:
        """Settle copies whose last entry was removed this operation.

        Deferred to the end of each public mutation because a trim may
        remove an entry and immediately re-add a remnant with the same
        copy id — a transient zero, not a resolution.
        """
        if not self._resolved_pending:
            return
        pending, self._resolved_pending = self._resolved_pending, []
        for cid, reason in pending:
            if self._copy_live.get(cid) != 0:
                continue  # remnant re-added (or already settled)
            del self._copy_live[cid]
            registered = self._copy_registered.pop(cid, 0)
            now = self._clock() if self._clock is not None else registered
            self._copies_resolved.inc()
            self._copy_lifetime.record(now - registered)
            trace = self._trace
            if trace is not None:
                trace.span_end("copy", f"copy:{cid}", {"reason": reason})

    # ------------------------------------------------------------- lookups
    def _dest_overlaps(self, addr: int, size: int) -> List[CttEntry]:
        """Entries whose destination range intersects [addr, addr+size)."""
        if not self._entries or size <= 0:
            return []
        idx = bisect_right(self._starts, addr) - 1
        out: List[CttEntry] = []
        if idx >= 0 and self._entries[idx].dst_end > addr:
            out.append(self._entries[idx])
        idx += 1
        end = addr + size
        while idx < len(self._entries) and self._entries[idx].dst < end:
            out.append(self._entries[idx])
            idx += 1
        return out

    def lookup_dest_line(self, line_addr: int) -> Optional[CttEntry]:
        """Entry tracking the destination cacheline at ``line_addr``."""
        line_addr = align_down(line_addr, CACHELINE_SIZE)
        hits = self._dest_overlaps(line_addr, CACHELINE_SIZE)
        return hits[0] if hits else None

    def source_lines_for_dest(self, line_addr: int) -> Optional[List[int]]:
        """Source cacheline(s) needed to materialize destination line.

        Returns one line address when source and destination are mutually
        cacheline-aligned, two when misaligned (the paper's double-bounce
        case), or ``None`` when the line is untracked.
        """
        entry = self.lookup_dest_line(line_addr)
        if entry is None:
            return None
        src_start = entry.src_for_dst(line_addr)
        first = align_down(src_start, CACHELINE_SIZE)
        last = align_down(src_start + CACHELINE_SIZE - 1, CACHELINE_SIZE)
        return [first] if first == last else [first, last]

    def source_overlaps(self, addr: int, size: int) -> List[CttEntry]:
        """Entries whose *source* range intersects [addr, addr+size)."""
        if size <= 0 or not self._entries:
            return []
        first_page = addr // PAGE_SIZE
        last_page = (addr + size - 1) // PAGE_SIZE
        if not any(p in self._src_pages
                   for p in range(first_page, last_page + 1)):
            return []
        end = addr + size
        return [e for e in self._entries if e.src < end and e.src_end > addr]

    def dest_lines_for_source(self, addr: int, size: int) -> List[int]:
        """Destination cachelines drawing any byte from [addr, addr+size).

        These are the lines that must be materialized before a write to
        that source region may land in memory (§III-B2).
        """
        lines: set = set()
        for entry in self.source_overlaps(addr, size):
            lo = max(entry.src, addr)
            hi = min(entry.src_end, addr + size)
            dst_lo = entry.dst + (lo - entry.src)
            dst_hi = entry.dst + (hi - entry.src)
            line = align_down(dst_lo, CACHELINE_SIZE)
            while line < dst_hi:
                lines.add(line)
                line += CACHELINE_SIZE
        return sorted(lines)

    # -------------------------------------------------------------- insert
    def insert(self, dst: int, src: int, size: int) -> "InsertResult":
        """Register a prospective copy.

        Implements destination-overlap eviction, source redirection, and
        contiguous-entry merging.  The caller must honour the ISA contract
        (cacheline-aligned ``dst``, cacheline-multiple ``size``).

        Returns an :class:`InsertResult`; when ``ok`` is False the table
        was full and the MC must stall the requestor until the async free
        engine makes room.  ``eager_lines`` lists destination lines whose
        bytes would come from more than one contiguous source region
        (possible only when a misaligned source overlaps an older tracked
        destination) — one entry cannot represent them, so the MC resolves
        them immediately.
        """
        if dst % CACHELINE_SIZE or size % CACHELINE_SIZE:
            raise AlignmentError(
                f"MCLAZY requires cacheline-aligned dst/size, got "
                f"dst={dst:#x} size={size}")
        if size <= 0:
            return InsertResult(ok=True)
        if size > self.max_entry_size:
            raise AlignmentError(
                f"single CTT entry limited to {self.max_entry_size} bytes")

        # 1. New destination overwrites: trim overlapped existing entries.
        #    (Idempotent, so safe to redo if a full table forces a retry.)
        evicted = self._trim_dest_range(dst, size, reason="overwritten")
        if evicted:
            self._dest_evictions.inc(evicted)

        # 2. Source redirection: split the new copy where its source is a
        #    tracked destination, pointing those segments at the original
        #    source instead (avoids copy chains).
        entries, eager = self._redirect_segments(dst, src, size)

        if len(self._entries) + len(entries) > self.capacity:
            # A merge may still make it fit, but hardware checks capacity
            # before the rewrite; be conservative, as the paper stalls.
            self._insert_fails.inc()
            self._flush_resolved()
            return InsertResult(ok=False)

        # One logical copy per accepted MCLAZY: its lifecycle span opens
        # here and closes when the last entry carrying its id is removed.
        cid = self._copy_seq
        self._copy_seq += 1
        self._copy_live[cid] = 0
        self._copy_registered[cid] = \
            self._clock() if self._clock is not None else 0
        trace = self._trace
        if trace is not None:
            trace.span_begin("copy", "ctt", "copy", f"copy:{cid}",
                            {"dst": hex(dst), "src": hex(src), "size": size,
                             "segments": len(entries),
                             "eager_lines": len(eager)})
        for seg_dst, seg_src, seg_size in entries:
            self._add(CttEntry(seg_dst, seg_src, seg_size, copy_id=cid))
        self._inserts.inc()
        self._merge_around(dst, size)
        if not entries:
            # Every line self-mapped or resolved eagerly: the copy is
            # registered and immediately complete, nothing left tracked.
            self._resolved_pending.append((cid, "eager"))
        self._flush_resolved()
        return InsertResult(ok=True, eager_lines=eager)

    def _redirect_segments(
            self, dst: int, src: int, size: int
    ) -> Tuple[List[Tuple[int, int, int]],
               List[Tuple[int, List[Tuple[int, int, int]]]]]:
        """Split [src, src+size) against tracked destinations.

        Returns ``(entries, eager_lines)``.  ``entries`` are (dst, src,
        size) triples with cacheline-aligned destinations whose source is
        contiguous plain memory.  ``eager_lines`` are destination lines
        whose backing bytes span two source regions; each is reported as
        ``(dst_line, [(src_byte_addr, line_offset, length), ...])`` for
        immediate resolution by the controller.
        """
        # Byte-granular segments covering the whole copy, in dst order.
        overlaps = sorted(self._dest_overlaps(src, size), key=lambda e: e.dst)
        segments: List[Tuple[int, int, int]] = []  # (dst_byte, src_byte, len)
        cursor = src
        end = src + size

        def emit(lo: int, hi: int, redirect: Optional[CttEntry]) -> None:
            if hi <= lo:
                return
            seg_dst = dst + (lo - src)
            if redirect is not None:
                seg_src = redirect.src_for_dst(lo)
                self._redirects.inc()
            else:
                seg_src = lo
            segments.append((seg_dst, seg_src, hi - lo))

        for entry in overlaps:
            lo = max(entry.dst, cursor)
            hi = min(entry.dst_end, end)
            if lo > cursor:
                emit(cursor, lo, None)
            emit(lo, hi, entry)
            cursor = hi
        if cursor < end:
            emit(cursor, end, None)

        # Walk destination cachelines, grouping lines wholly inside one
        # segment into entry runs and reporting boundary-straddling lines
        # for eager resolution.
        entries: List[Tuple[int, int, int]] = []
        eager: List[Tuple[int, List[Tuple[int, int, int]]]] = []
        run: Optional[List[int]] = None  # [dst, src, size]
        seg_idx = 0
        line = dst
        while line < dst + size:
            line_end = line + CACHELINE_SIZE
            while segments[seg_idx][0] + segments[seg_idx][2] <= line:
                seg_idx += 1
            seg_dst, seg_src, seg_len = segments[seg_idx]
            if seg_dst + seg_len >= line_end:
                # Whole line inside one segment.
                line_src = seg_src + (line - seg_dst)
                if line_src == line:
                    # Degenerate self-map (redirection resolved a copy
                    # back onto itself): memory already holds the right
                    # bytes, so nothing needs tracking.
                    if run is not None:
                        entries.append((run[0], run[1], run[2]))
                        run = None
                elif run is not None and run[0] + run[2] == line \
                        and run[1] + run[2] == line_src:
                    run[2] += CACHELINE_SIZE
                else:
                    if run is not None:
                        entries.append((run[0], run[1], run[2]))
                    run = [line, line_src, CACHELINE_SIZE]
            else:
                # Line straddles segment boundaries: resolve eagerly.
                pieces: List[Tuple[int, int, int]] = []
                pos = line
                idx = seg_idx
                while pos < line_end:
                    s_dst, s_src, s_len = segments[idx]
                    take = min(s_dst + s_len, line_end) - pos
                    pieces.append((s_src + (pos - s_dst), pos - line, take))
                    pos += take
                    if pos < line_end:
                        idx += 1
                eager.append((line, pieces))
                if run is not None:
                    entries.append((run[0], run[1], run[2]))
                    run = None
            line = line_end
        if run is not None:
            entries.append((run[0], run[1], run[2]))
        return entries, eager

    def _merge_around(self, dst: int, size: int) -> None:
        """Coalesce entries adjacent to [dst, dst+size) when contiguous."""
        hits = self._dest_overlaps(dst - CACHELINE_SIZE,
                                   size + 2 * CACHELINE_SIZE)
        if len(hits) < 2:
            return
        hits.sort(key=lambda e: e.dst)
        merged = [hits[0]]
        for entry in hits[1:]:
            prev = merged[-1]
            contiguous = (prev.dst_end == entry.dst
                          and prev.src_end == entry.src)
            if contiguous and prev.size + entry.size <= self.max_entry_size \
                    and prev.active and entry.active:
                self._remove(entry, reason="merged")
                self._unindex_src(prev)
                prev.size += entry.size
                self._index_src(prev)
                self._merges.inc()
            else:
                merged.append(entry)

    # ------------------------------------------------------------- removal
    def _trim_dest_range(self, addr: int, size: int,
                         reason: str = "resolved") -> int:
        """Stop tracking destination bytes in [addr, addr+size).

        Overlapped entries are removed, resized, or split into two
        remnants (which inherit the original entry's copy id).  Returns
        the number of entries affected.

        ``removed_bytes`` counts only the overlap — the bytes that
        actually leave tracking, never the re-added remnants.  That sum
        is a property of the untracked byte *set*, so it is identical no
        matter how a range is trimmed (whole, line by line, in any
        order); counting whole entry sizes instead would let equal-cycle
        trim order leak into the stat.
        """
        affected = 0
        end = addr + size
        for entry in list(self._dest_overlaps(addr, size)):
            affected += 1
            self._removed_bytes.inc(
                min(entry.dst_end, end) - max(entry.dst, addr))
            self._remove(entry, reason=reason)
            # Left remnant: [entry.dst, addr)
            if entry.dst < addr:
                self._add(CttEntry(entry.dst, entry.src, addr - entry.dst,
                                   copy_id=entry.copy_id))
            # Right remnant: [end, entry.dst_end)
            if entry.dst_end > end:
                offset = end - entry.dst
                self._add(CttEntry(end, entry.src + offset,
                                   entry.dst_end - end,
                                   copy_id=entry.copy_id))
        return affected

    def remove_dest_range(self, addr: int, size: int) -> int:
        """Public trim: destination written / resolved / freed."""
        addr = align_down(addr, CACHELINE_SIZE)
        if size % CACHELINE_SIZE:
            size = (size // CACHELINE_SIZE + 1) * CACHELINE_SIZE
        affected = self._trim_dest_range(addr, size)
        self._flush_resolved()
        return affected

    def free_hint(self, addr: int, size: int) -> int:
        """MCFREE: drop tracking for destinations inside the freed buffer."""
        affected = self._trim_dest_range(addr, size, reason="freed")
        self._flush_resolved()
        return affected

    def pop_smallest(self) -> Optional[CttEntry]:
        """Claim the smallest active entry for asynchronous resolution.

        The entry is marked inactive (claimed) but stays in the table so
        that reads keep bouncing until the copy lands; the free engine
        calls :meth:`remove_dest_range` when done.
        """
        best: Optional[CttEntry] = None
        for entry in self._entries:
            if entry.active and (best is None or entry.size < best.size):
                best = entry
        if best is not None:
            best.active = False
        return best

    def verify_invariants(self) -> None:
        """Raise if destination ranges overlap or ordering broke (tests)."""
        prev_end = -1
        prev_dst = -1
        for entry in self._entries:
            if entry.dst < prev_dst:
                raise SimulationError("CTT not sorted by destination")
            if entry.dst < prev_end:
                raise SimulationError(
                    f"overlapping destinations at {entry.dst:#x}")
            if entry.size <= 0 or entry.size % CACHELINE_SIZE:
                raise SimulationError(f"bad entry size {entry.size}")
            if entry.dst % CACHELINE_SIZE:
                raise SimulationError("unaligned destination")
            prev_dst = entry.dst
            prev_end = entry.dst_end
