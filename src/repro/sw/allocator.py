"""A first-fit free-list allocator over simulated physical memory.

Workloads that allocate and free buffers dynamically (Redis-style IO
pipelines, MVCC version arenas) use this instead of the System's bump
allocator.  Freeing a buffer can issue the paper's ``MCFREE`` hint
(§III-C: "this instruction can be called within functions like munmap
where the buffer is guaranteed to no longer be used"), which drops any
prospective copies targeting the freed region and saves their lazy
resolution entirely.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.units import CACHELINE_SIZE, align_up
from repro.isa import ops
from repro.isa.ops import Op


class FreeListAllocator:
    """First-fit allocator with coalescing frees."""

    def __init__(self, system, capacity: int, align: int = CACHELINE_SIZE):
        self.system = system
        self.align = align
        base = system.alloc(capacity, align=max(align, 4096))
        self.base = base
        self.capacity = capacity
        # Sorted, disjoint (addr, size) free ranges.
        self._free: List[Tuple[int, int]] = [(base, capacity)]
        self._live: dict = {}
        self.allocations = 0
        self.frees = 0
        self.failed_allocations = 0

    # ------------------------------------------------------------ queries
    @property
    def free_bytes(self) -> int:
        """Total unallocated bytes (may be fragmented)."""
        return sum(size for _, size in self._free)

    @property
    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._live)

    def owns(self, addr: int) -> bool:
        """True when ``addr`` is inside a live allocation."""
        for base, size in self._live.items():
            if base <= addr < base + size:
                return True
        return False

    # ------------------------------------------------------------- malloc
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; raises when no fragment fits."""
        if size <= 0:
            raise SimulationError("allocation size must be positive")
        size = align_up(size, self.align)
        for i, (start, length) in enumerate(self._free):
            if length >= size:
                self._free[i] = (start + size, length - size)
                if self._free[i][1] == 0:
                    del self._free[i]
                self._live[start] = size
                self.allocations += 1
                return start
        self.failed_allocations += 1
        raise SimulationError(
            f"allocator out of memory: {size}B requested, "
            f"{self.free_bytes}B free (fragmented)")

    # --------------------------------------------------------------- free
    def free(self, addr: int) -> int:
        """Release the allocation at ``addr``; returns its size."""
        size = self._live.pop(addr, None)
        if size is None:
            raise SimulationError(f"free of unallocated address {addr:#x}")
        self.frees += 1
        self._insert_free(addr, size)
        return size

    def free_ops(self, addr: int, use_mcfree: bool = True) -> Iterator[Op]:
        """Free plus the MCFREE hint for (MC)² systems.

        Yields the op stream a ``munmap``-style call would execute; on a
        baseline machine the hint degrades to a cheap no-op at the MC.
        """
        size = self.free(addr)
        if use_mcfree and self.system.ctt is not None:
            yield ops.mcfree(addr, size)
        yield ops.compute(30)  # allocator bookkeeping

    def _insert_free(self, addr: int, size: int) -> None:
        """Insert and coalesce a free range."""
        new: List[Tuple[int, int]] = []
        placed = False
        for start, length in self._free:
            if not placed and addr < start:
                new.append((addr, size))
                placed = True
            new.append((start, length))
        if not placed:
            new.append((addr, size))
        # Coalesce adjacent ranges.
        merged: List[Tuple[int, int]] = []
        for start, length in new:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((start, length))
        self._free = merged

    def check_invariants(self) -> None:
        """Free ranges are sorted, disjoint, inside the arena (tests)."""
        prev_end = self.base - 1
        total = 0
        for start, length in self._free:
            assert length > 0
            assert start > prev_end
            prev_end = start + length - 1
            total += length
        assert prev_end < self.base + self.capacity
        live = sum(self._live.values())
        assert live + total == self.capacity
