"""Copy-engine abstraction: one interface, three copy mechanisms.

Workloads are written once against :class:`CopyEngine` and run under each
evaluated mechanism:

* :class:`EagerEngine` — the native ``memcpy`` baseline,
* :class:`LazyEngine` — (MC)² ``memcpy_lazy`` (optionally through the
  interposer size threshold),
* :class:`ZioEngine` — the zIO comparator (page-granularity elision with
  copy-on-access faults), in :mod:`repro.zio.engine`.

The engine interface routes *reads and writes of copied data* as well,
because zIO needs to interpose page faults on first access; the hardware
engines pass accesses straight through.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common import params
from repro.isa import ops
from repro.isa.ops import Op
from repro.sw.memcpy import memcpy_lazy_ops, memcpy_ops


class CopyEngine:
    """Base interface: eager ``memcpy`` with pass-through accesses."""

    name = "memcpy"

    def __init__(self, system):
        self.system = system

    # ------------------------------------------------------------- copies
    def copy_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        """Perform (or elide) a memcpy of ``size`` bytes."""
        yield from memcpy_ops(self.system, dst, src, size)

    def free_ops(self, addr: int, size: int) -> Iterator[Op]:
        """Buffer will not be read again (munmap-style hint)."""
        return iter(())

    # ----------------------------------------------------------- accesses
    def read_ops(self, addr: int, size: int = 8, blocking: bool = False,
                 on_retire=None) -> Iterator[Op]:
        """Load from (possibly copied) data."""
        yield ops.load(addr, size, blocking=blocking, on_retire=on_retire)

    def write_ops(self, addr: int, size: int = 8,
                  data: Optional[bytes] = None, on_retire=None,
                  nontemporal: bool = False) -> Iterator[Op]:
        """Store to (possibly copied) data."""
        if nontemporal:
            yield ops.nt_store(addr, size, data=data, on_retire=on_retire)
        else:
            yield ops.store(addr, size, data=data, on_retire=on_retire)


class EagerEngine(CopyEngine):
    """Alias for the plain baseline, for symmetry in sweeps."""

    name = "memcpy"


class KernelEagerEngine(CopyEngine):
    """Native-kernel copies: ``rep movsb``-style line-granular moves.

    Kernel paths (``copy_user_huge_page``, pipe buffer copies) do not
    loop SIMD chunks through the out-of-order scheduler; they execute a
    microcoded copy that streams whole cachelines.  Sub-line fringes
    fall back to the chunked path.
    """

    name = "memcpy"

    def copy_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        from repro.common.units import CACHELINE_SIZE, align_rem
        head = min(align_rem(dst, CACHELINE_SIZE), size)
        if head or dst % CACHELINE_SIZE != src % CACHELINE_SIZE:
            # Misaligned relative layouts keep the chunked path.
            yield from memcpy_ops(self.system, dst, src, size)
            return
        if head:
            yield from memcpy_ops(self.system, dst, src, head)
            dst += head
            src += head
            size -= head
        bulk = size & ~(CACHELINE_SIZE - 1)
        if bulk:
            yield ops.bulk_copy(dst, src, bulk)
        if size - bulk:
            yield from memcpy_ops(self.system, dst + bulk, src + bulk,
                                  size - bulk)


class LazyEngine(CopyEngine):
    """(MC)²: copies go through ``memcpy_lazy`` (Fig. 8 wrapper).

    ``min_lazy`` models the interposer policy (§V-B redirects copies of
    1KB and larger); set it to 0 to make every copy lazy.  ``page_size``
    is the contiguity granularity the wrapper may assume (4KB for user
    space, 2MB when the kernel copies huge pages).
    """

    name = "mcsquare"

    def __init__(self, system, min_lazy: int = 0,
                 page_size: Optional[int] = None,
                 clwb_sources: bool = True):
        super().__init__(system)
        self.min_lazy = min_lazy
        self.page_size = page_size
        self.clwb_sources = clwb_sources

    def copy_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        if size < self.min_lazy:
            yield from memcpy_ops(self.system, dst, src, size)
            return
        if self.page_size is None:
            yield from memcpy_lazy_ops(self.system, dst, src, size,
                                       clwb_sources=self.clwb_sources)
        else:
            # Kernel-style invocation with a larger contiguity unit
            # (e.g. 2MB when copy_user_huge_page knows the buffers are
            # physically contiguous huge pages).
            yield from _memcpy_lazy_paged(self.system, dst, src, size,
                                          self.page_size,
                                          self.clwb_sources)

    def free_ops(self, addr: int, size: int) -> Iterator[Op]:
        yield ops.mcfree(addr, size)


def _memcpy_lazy_paged(system, dst: int, src: int, size: int,
                       page_size: int, clwb_sources: bool) -> Iterator[Op]:
    """memcpy_lazy with an explicit contiguity granularity."""
    from repro.common.units import CACHELINE_SIZE, align_rem
    from repro.common import params as p

    yield ops.compute(p.MEMCPY_LAZY_CALL_CYCLES)
    while size > 0:
        # Re-align the destination whenever an eager fringe breaks it
        # (see memcpy_lazy_ops for the rationale).
        left_fringe = min(align_rem(dst, CACHELINE_SIZE), size)
        if left_fringe:
            yield from memcpy_ops(system, dst, src, left_fringe)
            dst += left_fringe
            src += left_fringe
            size -= left_fringe
            continue
        src_off = align_rem(src, page_size) or page_size
        dst_off = align_rem(dst, page_size) or page_size
        copy_size = min(src_off, dst_off, size)
        if copy_size < CACHELINE_SIZE:
            yield from memcpy_ops(system, dst, src, copy_size)
        else:
            copy_size &= ~(CACHELINE_SIZE - 1)
            if clwb_sources:
                line = src - (src % CACHELINE_SIZE)
                while line < src + copy_size:
                    yield ops.clwb(line)
                    line += CACHELINE_SIZE
            # One MCLAZY per CTT-entry-sized run (<= 2MB each).
            pos = 0
            while pos < copy_size:
                run = min(copy_size - pos, p.CTT_MAX_COPY_SIZE)
                yield ops.compute(p.MCLAZY_SETUP_CYCLES)
                yield ops.mclazy(dst + pos, src + pos, run)
                pos += run
        dst += copy_size
        src += copy_size
        size -= copy_size
    yield ops.mfence()
