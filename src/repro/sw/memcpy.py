"""Software memcpy variants as op-stream fragments.

Each function is a generator of :class:`~repro.isa.ops.Op` objects meant
to be ``yield from``-ed inside a workload program:

* :func:`memcpy_ops` — the eager baseline: a load/store loop at SIMD
  (32B) granularity with per-iteration test/loop overhead (§II-A).
* :func:`memcpy_lazy_ops` — the paper's Figure 8 wrapper: cacheline-align
  the destination with an eager fringe copy, CLWB every source line, then
  issue one MCLAZY per page-bounded run, and fence at the end (§III-D,
  §IV: writebacks are modelled by explicit CLWB calls).
* :func:`interposed_memcpy_ops` — the ``copy_interpose.so`` policy:
  redirect copies of at least ``min_lazy`` bytes (1KB in §V-B) to the
  lazy path, fall back to eager otherwise.

All addresses are physical here; virtual-memory users go through
:mod:`repro.os`, which translates before building ops.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common import params
from repro.common.units import (CACHELINE_SIZE, PAGE_SIZE, align_rem)
from repro.isa import ops
from repro.isa.ops import Op


def _chunks(addr: int, size: int, max_chunk: int) -> Iterator[tuple]:
    """Split [addr, addr+size) into line-bounded chunks of <= max_chunk."""
    pos = addr
    end = addr + size
    while pos < end:
        line_left = CACHELINE_SIZE - (pos % CACHELINE_SIZE)
        take = min(max_chunk, line_left, end - pos)
        yield pos, take
        pos += take


def memcpy_ops(system, dst: int, src: int, size: int,
               chunk: int = params.MEMCPY_CHUNK) -> Iterator[Op]:
    """Eager memcpy: load + store per chunk, plus loop overhead."""
    offset = 0
    for src_pos, take in _chunks(src, size, chunk):
        dst_pos = dst + offset
        # A chunk may straddle a destination line even when it does not
        # straddle a source line; split the store accordingly.
        yield ops.load(src_pos, take)
        for d_pos, d_take in _chunks(dst_pos, take, take):
            s_pos = src_pos + (d_pos - dst_pos)
            yield ops.store(
                d_pos, d_take,
                data=(lambda s=s_pos, n=d_take: system.read_memory(s, n)))
        yield ops.compute(params.LOOP_OVERHEAD_CYCLES)
        offset += take


def memcpy_lazy_ops(system, dst: int, src: int, size: int,
                    clwb_sources: bool = True,
                    fence: bool = True,
                    wide_writeback: bool = False) -> Iterator[Op]:
    """The paper's ``memcpy_lazy`` wrapper (Fig. 8 pseudocode).

    Aligns the destination to a cacheline with an eager fringe copy,
    then walks page-bounded runs: runs of at least one cacheline become
    CLWB-per-source-line + one MCLAZY; sub-line tails are copied eagerly.
    Ends with an MFENCE ordering the prospective copies with later
    accesses.

    ``wide_writeback=True`` enables the paper's §V-A1 extension: the
    per-line CLWB train is replaced by a single range writeback per run,
    removing the overhead component that dominates above 1KB (see the
    ablation benchmark).
    """
    yield ops.compute(params.MEMCPY_LAZY_CALL_CYCLES)
    while size > 0:
        # Keep the destination cacheline-aligned.  The paper's Fig. 8
        # aligns it once up front, but a sub-cacheline page-tail copy
        # (line 15 there) can break the alignment again, so we re-check
        # every iteration.
        left_fringe = min(align_rem(dst, CACHELINE_SIZE), size)
        if left_fringe:
            yield from memcpy_ops(system, dst, src, left_fringe)
            dst += left_fringe
            src += left_fringe
            size -= left_fringe
            continue
        src_off = align_rem(src, PAGE_SIZE) or PAGE_SIZE
        dst_off = align_rem(dst, PAGE_SIZE) or PAGE_SIZE
        copy_size = min(src_off, dst_off, size)
        if copy_size < CACHELINE_SIZE:
            yield from memcpy_ops(system, dst, src, copy_size)
        else:
            copy_size &= ~(CACHELINE_SIZE - 1)
            if clwb_sources:
                line = src - (src % CACHELINE_SIZE)
                if wide_writeback:
                    yield ops.clwb_range(line, src + copy_size - line)
                else:
                    while line < src + copy_size:
                        yield ops.clwb(line)
                        line += CACHELINE_SIZE
            yield ops.compute(params.MCLAZY_SETUP_CYCLES)
            yield ops.mclazy(dst, src, copy_size)
        dst += copy_size
        src += copy_size
        size -= copy_size
    if fence:
        yield ops.mfence()


def interposed_memcpy_ops(
        system, dst: int, src: int, size: int,
        min_lazy: int = params.INTERPOSER_MIN_LAZY_SIZE) -> Iterator[Op]:
    """``copy_interpose.so``: lazy for large copies, eager otherwise."""
    if size >= min_lazy:
        yield from memcpy_lazy_ops(system, dst, src, size)
    else:
        yield from memcpy_ops(system, dst, src, size)


def memcpy_backend_ops(system, dst: int, src: int, size: int) -> Iterator[Op]:
    """Dispatch one copy through the machine's configured copy backend.

    The backend comes from ``SystemConfig.copy_backend`` via
    ``System.copy_backend()`` (see :mod:`repro.copyengine`), so the same
    call site runs eager / mclazy / zio / rowclone / mirror depending on
    configuration alone.
    """
    yield from system.copy_backend().copy_ops(dst, src, size)


def touch_ops(addr: int, size: int,
              stride: int = CACHELINE_SIZE) -> Iterator[Op]:
    """Read every ``stride``-th byte, pulling the region into the caches.

    Used to build the "Touched memcpy" baseline of Figure 10.
    """
    pos = addr
    end = addr + size
    while pos < end:
        yield ops.load(pos, 8)
        pos += stride


def stream_read_ops(addr: int, size: int,
                    stride: int = CACHELINE_SIZE,
                    on_retire=None) -> Iterator[Op]:
    """Sequentially read (accumulate) a buffer, one load per stride."""
    pos = addr
    end = addr + size
    while pos < end:
        yield ops.load(pos, 8, on_retire=on_retire)
        yield ops.compute(1)
        pos += stride
