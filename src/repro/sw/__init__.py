"""Software layer: memcpy variants, wrapper, interposer, engines."""

from repro.sw.allocator import FreeListAllocator
from repro.sw.engine import (CopyEngine, EagerEngine, KernelEagerEngine,
                             LazyEngine)
from repro.sw.memcpy import (interposed_memcpy_ops, memcpy_lazy_ops,
                             memcpy_ops, stream_read_ops, touch_ops)

__all__ = ["CopyEngine", "EagerEngine", "KernelEagerEngine", "LazyEngine",
           "FreeListAllocator", "memcpy_ops", "memcpy_lazy_ops",
           "interposed_memcpy_ops", "touch_ops", "stream_read_ops"]
