"""``python -m repro.perf`` — simulator-speed measurement and gating.

Commands:

* ``micro``    — run the engine/fig12 microbenchmarks, print the
  numbers, and record them into ``results/BENCH_sim.json``;
* ``gate``     — re-run the microbenchmarks and fail (exit 1) if the
  machine-normalized events/sec regressed more than ``--tolerance``
  (default 20%) against ``benchmarks/bench-baseline.json``;
* ``baseline`` — rewrite ``benchmarks/bench-baseline.json`` from a
  fresh measurement (run on an idle machine);
* ``cache``    — ``info`` or ``clear`` the persistent sim-result cache;
* ``resilience`` — inspect supervised-sweep state: ``journals`` lists
  the per-sweep completion journals (with resume status), ``reports``
  prints persisted failure reports, ``info`` summarizes both.

The gate compares *ratios* (events/sec divided by a pure-Python
calibration loop's ops/sec), so one baseline file serves laptops and CI
runners alike.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.perf.cache import SimCache, repo_root

BASELINE_PATH = repo_root() / "benchmarks" / "bench-baseline.json"

#: The machine-normalized metrics the perf gate enforces.
GATED_METRICS = ("engine_per_calibration_op", "fig12_per_calibration_op",
                 "fig13_per_calibration_op")


def _measure(args) -> dict:
    from repro.perf.microbench import run_microbench

    return run_microbench(num_events=args.events, repeats=args.repeats)


def _cmd_micro(args) -> int:
    from repro.perf.profile import record_engine

    numbers = _measure(args)
    for key in sorted(numbers):
        print(f"{key:28s} {numbers[key]}")
    if not args.no_record:
        record_engine(numbers)
        print("\nrecorded into results/BENCH_sim.json")
    if args.profile:
        _write_profile_report(record_costs=not args.no_record)
    return 0


def _write_profile_report(record_costs: bool = True) -> None:
    """Profile one fig12-style point; print + archive the top-20 table.

    Runs separately from the measured numbers above — attaching the
    per-label cost profiler slows the engine, so it must never share a
    run with the events/sec that feed the gate.  Always writes
    ``results/PROFILE_micro.txt`` (the CI artifact); the raw per-label
    histogram additionally lands in ``BENCH_sim.json`` unless
    ``--no-record``.
    """
    from repro.perf.microbench import seq_access_stats_point
    from repro.perf.profile import (format_top_labels, profile_report_path,
                                    record_label_costs)

    point = seq_access_stats_point(with_stats=False, profiled=True)
    costs = point["label_costs"]
    report = format_top_labels(costs, limit=20)
    print(f"\ntop labels by cumulative callback time "
          f"(profiled fig12 point, {point['events']} events):")
    print(report)
    if record_costs:
        record_label_costs(costs)
    path = profile_report_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report + "\n", encoding="utf-8")
    print(f"\nprofile report written to {path}")


def _cmd_gate(args) -> int:
    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    numbers = _measure(args)
    from repro.perf.profile import record_engine

    record_engine(numbers)
    failed = False
    for metric in GATED_METRICS:
        reference = baseline.get(metric)
        measured = numbers.get(metric)
        if reference is None or measured is None:
            print(f"{metric}: missing from "
                  f"{'baseline' if reference is None else 'measurement'}; "
                  f"skipped")
            continue
        floor = reference * (1.0 - args.tolerance)
        verdict = "ok" if measured >= floor else "REGRESSED"
        failed = failed or measured < floor
        print(f"{metric}: measured {measured:.4f} vs baseline "
              f"{reference:.4f} (floor {floor:.4f}) — {verdict}")
    if failed:
        print(f"\nperf gate FAILED: events/sec regressed more than "
              f"{args.tolerance:.0%} vs {args.baseline}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


def _cmd_baseline(args) -> int:
    numbers = _measure(args)
    payload = {metric: numbers[metric] for metric in GATED_METRICS}
    payload["comment"] = (
        "Machine-normalized perf floors for `python -m repro.perf gate`: "
        "events/sec divided by the pure-Python calibration loop's "
        "ops/sec. Regenerate with `python -m repro.perf baseline` on an "
        "idle machine after intentional perf-affecting changes.")
    with open(args.baseline, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.baseline}")
    for metric in GATED_METRICS:
        print(f"  {metric} = {payload[metric]}")
    return 0


def _cmd_cache(args) -> int:
    store = SimCache()
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached results from {store.root}")
        return 0
    info = store.info()
    for key in ("root", "entries", "bytes", "enabled", "quarantined",
                "stale_tmp_swept", "journals"):
        print(f"{key:16s} {info[key]}")
    return 0


def _cmd_resilience(args) -> int:
    from repro.resilience.report import SweepJournal, load_report

    store = SimCache()
    sweeps = store.sweeps_dir
    journals = (sorted(sweeps.glob("*.journal.jsonl"))
                if sweeps.exists() else [])
    reports = (sorted(sweeps.glob("*.report.json"))
               if sweeps.exists() else [])
    if args.action in ("info", "journals"):
        if not journals:
            print(f"no sweep journals under {sweeps}")
        for path in journals:
            sweep_id = path.name.split(".")[0]
            state = SweepJournal(sweeps, sweep_id).load()
            status = "complete" if state["ended"] else "INTERRUPTED"
            print(f"{sweep_id}  runs={state['runs']} "
                  f"done={len(state['done_indices'])} "
                  f"quarantined={len(state['quarantined'])}  {status}")
    if args.action in ("info", "reports"):
        if not reports:
            print(f"no failure reports under {sweeps}")
        for path in reports:
            try:
                payload = load_report(path)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"{path.name}: unreadable ({exc})")
                continue
            print(f"{path.name}: policy={payload.get('policy')} "
                  f"completed={payload.get('completed')}/"
                  f"{payload.get('total')} "
                  f"quarantined={payload.get('quarantined')} "
                  f"pool_breaks={payload.get('pool_breaks')}")
            for failure in payload.get("failures", []):
                print(f"  point[{failure.get('index')}] "
                      f"{failure.get('name')}: {failure.get('kind')} "
                      f"after {failure.get('attempts')} attempt(s) — "
                      f"{failure.get('cause')}")
    return 0


def _add_measure_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--events", type=int, default=200_000,
                        help="engine microbenchmark event count")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs (default 3)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf", description="simulator performance toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    micro = sub.add_parser("micro", help="measure and record events/sec")
    _add_measure_args(micro)
    micro.add_argument("--no-record", action="store_true",
                       help="print only; do not touch BENCH_sim.json")
    micro.add_argument("--profile", action="store_true",
                       help="also profile a fig12 point and emit a "
                            "top-20 cumulative-time label report "
                            "(results/PROFILE_micro.txt)")

    gate = sub.add_parser("gate", help="fail if events/sec regressed")
    _add_measure_args(gate)
    gate.add_argument("--baseline", default=str(BASELINE_PATH),
                      help="baseline JSON (default benchmarks/"
                           "bench-baseline.json)")
    gate.add_argument("--tolerance", type=float, default=0.2,
                      help="allowed fractional regression (default 0.2)")

    base = sub.add_parser("baseline", help="rewrite the perf baseline")
    _add_measure_args(base)
    base.add_argument("--baseline", default=str(BASELINE_PATH))

    cache = sub.add_parser("cache", help="inspect/clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))

    res = sub.add_parser("resilience",
                         help="inspect sweep journals and failure reports")
    res.add_argument("action", choices=("info", "journals", "reports"),
                     nargs="?", default="info")

    args = parser.parse_args(argv)
    handlers = {"micro": _cmd_micro, "gate": _cmd_gate,
                "baseline": _cmd_baseline, "cache": _cmd_cache,
                "resilience": _cmd_resilience}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
