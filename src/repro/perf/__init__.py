"""Simulator performance toolkit: parallel sweeps, caching, profiling.

* :mod:`repro.perf.runner` — :func:`sim_map` fans independent
  simulation points across ``REPRO_JOBS`` worker processes with
  deterministic, input-ordered merging;
* :mod:`repro.perf.cache` — persistent content-addressed result store
  under ``results/.simcache/`` (``REPRO_SIMCACHE=off`` to bypass);
* :mod:`repro.perf.profile` — ``results/BENCH_sim.json`` recording of
  events/sec, per-label event costs, and per-exhibit wall clock;
* :mod:`repro.perf.microbench` — engine and fig12-point speed probes
  plus the host-calibration loop the CI perf gate normalizes against;
* :mod:`repro.perf.hostclock` — the single sanctioned wall-clock read.

``python -m repro.perf`` exposes ``micro``, ``gate``, ``baseline`` and
``cache`` commands (see :mod:`repro.perf.__main__`).
"""

from repro.perf.cache import SimCache, cache_enabled, code_stamp
from repro.perf.hostclock import host_seconds
from repro.perf.profile import (Stopwatch, load_bench, record_engine,
                                record_exhibit, record_label_costs,
                                update_bench)
from repro.perf.runner import SimPoint, jobs_from_env, sim_map

__all__ = [
    "SimCache",
    "SimPoint",
    "Stopwatch",
    "cache_enabled",
    "code_stamp",
    "host_seconds",
    "jobs_from_env",
    "load_bench",
    "record_engine",
    "record_exhibit",
    "record_label_costs",
    "sim_map",
    "update_bench",
]
