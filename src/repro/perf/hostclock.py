"""The one sanctioned host wall-clock read in ``repro``.

Simulation code must never read host time (analyzer rule MC2001): every
simulated decision keys off :attr:`Simulator.now`.  Performance
*measurement* of the simulator itself, however, needs a real clock.
This module funnels every such read through a single function so the
wall-clock dependency stays auditable — the MC2001 finding on the call
below is deliberately baselined (see ``analysis-baseline.json``), and it
is the only entry allowed to exist for that rule.

Nothing imported from here may influence simulated behaviour: callers
use it to *time* runs (events/sec, per-exhibit wall clock), never to
*drive* them.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter


def host_seconds() -> float:
    """Monotonic host time in seconds, for measuring simulator speed."""
    return _perf_counter()
