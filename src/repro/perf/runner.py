"""Parallel sweep runner: fan independent simulation points out.

Every paper exhibit is a sweep of *independent* simulations — each
point builds its own :class:`~repro.system.system.System`, runs one
workload, and returns a dict of scalars.  :func:`sim_map` executes a
list of such points, optionally across ``REPRO_JOBS`` worker processes,
and returns results **in input order** regardless of completion order,
so a parallel sweep is bit-identical to a serial one.

Points must be picklable: module-level functions with JSON-ish
arguments (configs are frozen dataclasses, which pickle fine).  Workers
are forked with ``REPRO_JOBS=1`` so a sweep nested inside a worker
never forks again.

Results are memoized through :mod:`repro.perf.cache` (disable with
``REPRO_SIMCACHE=off`` or ``cache=False``); the cache is consulted and
populated only in the parent process, keeping workers write-free.

Parallel sweeps run under the :mod:`repro.resilience` supervisor:
per-point futures with wall-clock deadlines (``REPRO_POINT_TIMEOUT``),
pool respawn on worker death, bounded retries with deterministic
backoff (``REPRO_POINT_RETRIES``/``REPRO_RETRY_BACKOFF``), and
quarantine of persistently failing points into a structured failure
report.  Every completed fresh result is checkpointed to the result
cache *as it finishes* and journalled under
``results/.simcache/.sweeps/``, so an interrupted sweep — Ctrl-C, OOM
kill, machine reboot — resumes from where it died and merges to
bit-identical results.  The failure policy (``REPRO_SWEEP_POLICY`` or
the ``policy`` argument) is ``strict`` (fail fast, re-raising the
original exception when there is one) or ``partial`` (return with
explicit :class:`~repro.resilience.report.Hole` slots).

With ``REPRO_SIMSAN=1`` every point runs under the runtime sanitizer
(:mod:`repro.analysis.simsan`): module globals are snapshotted around
each call to catch cross-fork mutation, and a periodic sample of cache
hits is recomputed and compared against the stored value.

With ``REPRO_TRACE=<spec>`` (see :mod:`repro.obs`) every point runs with
the observability tracer attached, and each point's traces are exported
to content-addressed files under ``REPRO_TRACE_DIR`` (default
``results/traces``) as the point completes; the supervisor additionally
exports one span per point attempt (end reason ok/timeout/crash/
retried/quarantined) to ``supervisor.<sweep>.spans.json``.  Traced
sweeps bypass the result cache — a cache hit would skip the simulation,
and there is no trace without a run.

With ``REPRO_TIE_ORDER=<orders>`` (see :mod:`repro.analysis.simsan`)
every point runs under a perturbed equal-cycle event order; a comma
list (or the ``paired`` shorthand) runs each point under *every*
listed order and diffs the results and full StatGroup trees — any
divergence is a confirmed same-cycle race (the MC26xx dynamic oracle).
Tie-order sweeps bypass the result cache for the same reason traced
sweeps do.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError, ReproError, SweepError
from repro.perf.cache import MISS, SimCache, Unkeyable, cache_enabled, point_key
from repro.perf.hostclock import host_seconds
from repro.resilience.deadline import (backoff_from_env, max_attempts,
                                       point_timeout, scale_from_env)
from repro.resilience.report import (FailureReport, Hole, PointFailure,
                                     SweepJournal)
from repro.resilience.supervisor import SupervisorConfig, run_supervised

#: Set in forked workers so nested sweeps stay serial.
_WORKER_ENV = "REPRO_PERF_WORKER"

#: Valid graceful-degradation policies (see module docstring).
_POLICIES = ("strict", "partial")


@dataclass(frozen=True)
class SimPoint:
    """One independent simulation: ``fn(*args, **kwargs)``."""

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"{self.fn.__module__}.{self.fn.__qualname__}"


def jobs_from_env() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    if os.environ.get(_WORKER_ENV):
        return 1
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def policy_from_env() -> str:
    """Sweep failure policy from ``REPRO_SWEEP_POLICY`` (default strict)."""
    raw = os.environ.get("REPRO_SWEEP_POLICY", "").strip().lower()
    return raw if raw in _POLICIES else "strict"


def _tracing_requested() -> bool:
    """True when ``REPRO_TRACE`` asks for the observability tracer."""
    from repro.obs.tracer import OFF_TOKENS
    return os.environ.get("REPRO_TRACE", "").strip().lower() not in OFF_TOKENS


def _tie_orders() -> List[str]:
    """Parsed ``REPRO_TIE_ORDER`` (see :mod:`repro.analysis.simsan`).

    Empty when unset/off; the simsan import is deferred behind the env
    check so normal sweeps never pay for the analysis package.
    """
    raw = os.environ.get("REPRO_TIE_ORDER", "").strip().lower()
    if raw in ("", "0", "off", "none", "false"):
        return []
    from repro.analysis import simsan
    return simsan.tie_order_spec()


def _sanitizer():
    """The simsan module when ``REPRO_SIMSAN`` is active, else None.

    Imported lazily so the analysis package costs nothing on normal
    runs; the env check is repeated per call because tests toggle it.
    """
    if os.environ.get("REPRO_SIMSAN", "").strip().lower() in (
            "", "0", "off", "false"):
        return None
    from repro.analysis import simsan
    return simsan if simsan.enabled() else None


def _run_point(point: SimPoint) -> Any:
    fn = point.fn
    if _tracing_requested():
        # Install the inherited REPRO_TRACE spec (idempotent: an explicit
        # runtime.configure wins) and export this point's traces to
        # content-addressed files as it completes — identical paths and
        # bytes whether the sweep ran serial or forked.
        from repro.obs import runtime as obs_runtime
        if obs_runtime.configure_from_spec(
                os.environ.get("REPRO_TRACE", ""),
                out_dir=os.environ.get("REPRO_TRACE_DIR")):
            fn = obs_runtime.traced(fn, point.name)
    san = _sanitizer()
    if san is not None:
        # REPRO_SIMSAN=own additionally arms the shard-ownership audit
        # (idempotent; a per-worker no-op once installed).
        san.maybe_install_ownership()
        call = (lambda *args, **kwargs:
                san.checked_call(fn, args, kwargs, point.name))
    else:
        call = fn
    orders = _tie_orders()
    if len(orders) >= 2:
        # Paired tie-order mode: run this point under every configured
        # order and diff results + stat trees (simsan is outermost so
        # its engine/stats hooks look identical to checked_call's
        # before/after global snapshots).
        from repro.analysis import simsan
        return simsan.paired_tie_call(call, point.args, point.kwargs,
                                      point.name)
    if orders:
        from repro.analysis import simsan
        return simsan.tie_call(call, point.args, point.kwargs)
    return call(*point.args, **point.kwargs)


def _init_worker() -> None:
    # Keep nested sim_map calls (a sweep point that itself sweeps)
    # serial inside workers, and mark the process for jobs_from_env().
    os.environ[_WORKER_ENV] = "1"
    os.environ["REPRO_JOBS"] = "1"


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _sweep_id(points: List[SimPoint], keys: List[Optional[str]],
              scale: str) -> str:
    """Stable sweep identity: same points + scale -> same journal."""
    digest = hashlib.sha256()
    digest.update(scale.encode("utf-8"))
    digest.update(b"\0")
    for i, point in enumerate(points):
        ident = keys[i] or f"unkeyed:{i}:{point.name}"
        digest.update(ident.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def _attempt_hook():
    """Span recorder for the obs runtime, or None when tracing is off."""
    if not _tracing_requested():
        return None
    from repro.obs import runtime as obs_runtime

    def hook(index, name, attempt, start_s, end_s, reason, cause):
        obs_runtime.record_attempt_span(index, name, attempt, start_s,
                                        end_s, reason, cause)
    return hook


def _export_spans(sweep_id: str) -> None:
    """Flush supervisor attempt spans next to the simulation traces."""
    from repro.obs import runtime as obs_runtime
    obs_runtime.configure_from_spec(
        os.environ.get("REPRO_TRACE", ""),
        out_dir=os.environ.get("REPRO_TRACE_DIR"))
    obs_runtime.export_attempt_spans(sweep_id)


def _failure_kind_of(exc: BaseException) -> str:
    from repro.common.errors import DeadlineError, LivelockError
    if isinstance(exc, DeadlineError):
        return "sim-deadline"
    if isinstance(exc, LivelockError):
        return "livelock"
    return "error"


class _Journal:
    """OSError-tolerant wrapper: journalling must never fail the sweep."""

    def __init__(self, journal: Optional[SweepJournal]):
        self._journal = journal

    def __getattr__(self, name: str):
        target = getattr(self._journal, name, None)

        def call(*args, **kwargs):
            if self._journal is None or target is None:
                return None
            try:
                return target(*args, **kwargs)
            except OSError:
                return None
        return call


def sim_map(points: Iterable[SimPoint],
            jobs: Optional[int] = None,
            cache: bool = True,
            store: Optional[SimCache] = None,
            scale: Optional[str] = None,
            policy: Optional[str] = None) -> List[Any]:
    """Run every point; results in input order, parallel across ``jobs``.

    ``jobs`` defaults to ``REPRO_JOBS``; ``cache=False`` bypasses the
    persistent result store (``store`` overrides its location, for
    tests).  Cached points never reach the pool, so a warm sweep costs
    a few file reads.  ``policy`` overrides ``REPRO_SWEEP_POLICY``:
    ``strict`` (default) fails fast on a quarantined point, ``partial``
    returns with explicit :class:`~repro.resilience.report.Hole` slots.
    """
    points = list(points)
    if jobs is None:
        jobs = jobs_from_env()
    if policy is None:
        policy = policy_from_env()
    elif policy not in _POLICIES:
        raise ConfigError(f"unknown sweep policy {policy!r}; "
                          f"expected one of {_POLICIES}")
    # A traced sweep must execute every point: serving a result from the
    # cache would produce no trace file for it.  A tie-order sweep must
    # too — a cache hit would skip the perturbed runs the mode exists
    # to compare (and a perturbed-order result must never be stored
    # under the canonical key).
    use_cache = cache and not _tracing_requested() and not _tie_orders() \
        and (store is not None or cache_enabled())
    if use_cache and store is None:
        store = SimCache()

    results: List[Any] = [None] * len(points)
    keys: List[Optional[str]] = [None] * len(points)
    misses: List[int] = []
    scale = scale_from_env(scale)
    if use_cache:
        for i, point in enumerate(points):
            try:
                keys[i] = point_key(point.name, point.args, point.kwargs,
                                    scale)
            except Unkeyable:
                misses.append(i)
                continue
            value = store.get(keys[i])
            if value is MISS:
                misses.append(i)
            else:
                san = _sanitizer()
                if san is not None and san.should_audit_hit():
                    # Recompute serially in the parent and compare: a
                    # divergence means the key omits an input that
                    # influences the result (MC2501's dynamic oracle).
                    san.audit_hit(point.name, keys[i], value,
                                  lambda p=point: p.fn(*p.args, **p.kwargs))
                results[i] = value
    else:
        misses = list(range(len(points)))

    if not misses:
        return results

    sweep_id = _sweep_id(points, keys, scale)
    journal = _Journal(SweepJournal(store.sweeps_dir, sweep_id)
                       if use_cache and store is not None else None)
    prior = journal.load() or {}
    if prior.get("runs") and not prior.get("ended"):
        print(f"repro.perf: resuming interrupted sweep {sweep_id}: "
              f"{len(points) - len(misses)}/{len(points)} points already "
              f"cached", file=sys.stderr)
    journal.start(len(points), len(points) - len(misses), len(misses))

    on_attempt = _attempt_hook()
    done_indices = set()

    def on_done(i: int, value: Any) -> None:
        # The checkpoint path: persist every fresh result the moment it
        # completes, so an interrupted sweep never recomputes it.
        results[i] = value
        done_indices.add(i)
        if use_cache and keys[i] is not None:
            store.put(keys[i], points[i].name, value)
        journal.record_done(i, points[i].name, keys[i])

    report = FailureReport(sweep_id=sweep_id, policy=policy, scale=scale,
                           total=len(points),
                           completed=len(points) - len(misses))
    try:
        # Any jobs>1 sweep goes through the supervised pool, even for a
        # single miss: a resumed sweep whose one remaining point is the
        # poison that killed the last run must crash a *worker*, not
        # the parent.  jobs=1 keeps the historical in-process path.
        if jobs > 1 and _fork_available():
            outcome = _run_parallel(points, misses, keys, jobs, policy,
                                    scale, on_done, on_attempt)
        else:
            outcome = _run_serial(points, misses, keys, policy, on_done,
                                  on_attempt)
    finally:
        if on_attempt is not None:
            _export_spans(sweep_id)

    report.completed += outcome.completed
    report.pool_breaks = outcome.pool_breaks
    for failure in outcome.failures:
        report.add(failure)
        journal.record_quarantine(failure)
    journal.record_end(report.completed, report.quarantined)
    journal.close()

    if report.failures or outcome.budget_exhausted:
        if use_cache and store is not None:
            try:
                report.write(store.sweeps_dir)
            except OSError:
                pass
        print(f"repro.perf: {report.summary()}", file=sys.stderr)

    if outcome.budget_exhausted:
        raise SweepError(
            f"supervisor pool-break budget exhausted after "
            f"{outcome.pool_breaks} breaks\n{report.summary()}",
            report=report)
    if report.failures:
        if policy == "strict":
            if outcome.abort_exc is not None:
                raise outcome.abort_exc
            raise SweepError(
                f"sweep failed under strict policy\n{report.summary()}",
                report=report)
        for failure in report.failures:
            results[failure.index] = Hole(
                index=failure.index, name=failure.name,
                kind=failure.kind, cause=failure.cause,
                attempts=failure.attempts)
        # Under partial, anything neither completed nor quarantined
        # (strict-style early stop cannot happen here) would be a
        # silent hole — make it loud.
        quarantined = {failure.index for failure in report.failures}
        for i in misses:
            if i not in done_indices and i not in quarantined:
                results[i] = Hole(index=i, name=points[i].name,
                                  kind="crash", cause="sweep aborted",
                                  attempts=0)
    return results


def _run_parallel(points, misses, keys, jobs, policy, scale, on_done,
                  on_attempt):
    """Supervised fork-pool execution of the missing points."""
    tasks = [(i, points[i], keys[i]) for i in misses]
    config = SupervisorConfig(
        jobs=min(jobs, len(tasks)),
        policy=policy,
        wall_timeout=point_timeout(scale),
        max_attempts=max_attempts(),
        backoff=backoff_from_env(),
        initializer=_init_worker,
    )
    return run_supervised(_run_point, tasks, config, on_done,
                          on_attempt=on_attempt)


def _run_serial(points, misses, keys, policy, on_done, on_attempt):
    """In-process execution, one point at a time, checkpointing each.

    Behaviourally preserved from the pre-supervisor runner for
    ``strict``: the first exception surfaces unchanged (no retries, no
    wall deadline — the parent cannot kill itself).  The difference is
    that every already-completed result has been persisted by
    ``on_done``, so partial progress survives.  Under ``partial`` the
    exception becomes a quarantine entry and the sweep continues.
    """
    from repro.resilience.supervisor import SweepOutcome
    outcome = SweepOutcome()
    for i in misses:
        start = host_seconds()
        try:
            value = _run_point(points[i])
        except Exception as exc:  # noqa: BLE001 - classified below
            end = host_seconds()
            cause = f"{type(exc).__name__}: {exc}"
            kind = (_failure_kind_of(exc) if isinstance(exc, ReproError)
                    else "error")
            if on_attempt is not None:
                on_attempt(i, points[i].name, 1, start, end,
                           "quarantined", cause)
            outcome.failures.append(PointFailure(
                index=i, name=points[i].name, kind=kind, cause=cause,
                attempts=1, key=keys[i]))
            if policy == "strict":
                # The caller re-raises this original exception after
                # journalling the quarantine and writing the report.
                outcome.aborted = True
                outcome.abort_exc = exc
                break
            continue
        if on_attempt is not None:
            on_attempt(i, points[i].name, 1, start, host_seconds(),
                       "ok", None)
        outcome.completed += 1
        on_done(i, value)
    return outcome
