"""Parallel sweep runner: fan independent simulation points out.

Every paper exhibit is a sweep of *independent* simulations — each
point builds its own :class:`~repro.system.system.System`, runs one
workload, and returns a dict of scalars.  :func:`sim_map` executes a
list of such points, optionally across ``REPRO_JOBS`` worker processes,
and returns results **in input order** regardless of completion order,
so a parallel sweep is bit-identical to a serial one.

Points must be picklable: module-level functions with JSON-ish
arguments (configs are frozen dataclasses, which pickle fine).  Workers
are forked with ``REPRO_JOBS=1`` so a sweep nested inside a worker
never forks again.

Results are memoized through :mod:`repro.perf.cache` (disable with
``REPRO_SIMCACHE=off`` or ``cache=False``); the cache is consulted and
populated only in the parent process, keeping workers write-free.

With ``REPRO_SIMSAN=1`` every point runs under the runtime sanitizer
(:mod:`repro.analysis.simsan`): module globals are snapshotted around
each call to catch cross-fork mutation, and a periodic sample of cache
hits is recomputed and compared against the stored value.

With ``REPRO_TRACE=<spec>`` (see :mod:`repro.obs`) every point runs with
the observability tracer attached, and each point's traces are exported
to content-addressed files under ``REPRO_TRACE_DIR`` (default
``results/traces``) as the point completes.  Traced sweeps bypass the
result cache — a cache hit would skip the simulation, and there is no
trace without a run.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.perf.cache import MISS, SimCache, Unkeyable, cache_enabled, point_key

#: Set in forked workers so nested sweeps stay serial.
_WORKER_ENV = "REPRO_PERF_WORKER"


@dataclass(frozen=True)
class SimPoint:
    """One independent simulation: ``fn(*args, **kwargs)``."""

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"{self.fn.__module__}.{self.fn.__qualname__}"


def jobs_from_env() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    if os.environ.get(_WORKER_ENV):
        return 1
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _tracing_requested() -> bool:
    """True when ``REPRO_TRACE`` asks for the observability tracer."""
    from repro.obs.tracer import OFF_TOKENS
    return os.environ.get("REPRO_TRACE", "").strip().lower() not in OFF_TOKENS


def _sanitizer():
    """The simsan module when ``REPRO_SIMSAN`` is active, else None.

    Imported lazily so the analysis package costs nothing on normal
    runs; the env check is repeated per call because tests toggle it.
    """
    if os.environ.get("REPRO_SIMSAN", "").strip().lower() in (
            "", "0", "off", "false"):
        return None
    from repro.analysis import simsan
    return simsan if simsan.enabled() else None


def _run_point(point: SimPoint) -> Any:
    fn = point.fn
    if _tracing_requested():
        # Install the inherited REPRO_TRACE spec (idempotent: an explicit
        # runtime.configure wins) and export this point's traces to
        # content-addressed files as it completes — identical paths and
        # bytes whether the sweep ran serial or forked.
        from repro.obs import runtime as obs_runtime
        if obs_runtime.configure_from_spec(
                os.environ.get("REPRO_TRACE", ""),
                out_dir=os.environ.get("REPRO_TRACE_DIR")):
            fn = obs_runtime.traced(fn, point.name)
    san = _sanitizer()
    if san is not None:
        return san.checked_call(fn, point.args, point.kwargs,
                                point.name)
    return fn(*point.args, **point.kwargs)


def _init_worker() -> None:
    # Keep nested sim_map calls (a sweep point that itself sweeps)
    # serial inside workers, and mark the process for jobs_from_env().
    os.environ[_WORKER_ENV] = "1"
    os.environ["REPRO_JOBS"] = "1"


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def sim_map(points: Iterable[SimPoint],
            jobs: Optional[int] = None,
            cache: bool = True,
            store: Optional[SimCache] = None,
            scale: Optional[str] = None) -> List[Any]:
    """Run every point; results in input order, parallel across ``jobs``.

    ``jobs`` defaults to ``REPRO_JOBS``; ``cache=False`` bypasses the
    persistent result store (``store`` overrides its location, for
    tests).  Cached points never reach the pool, so a warm sweep costs
    a few file reads.
    """
    points = list(points)
    if jobs is None:
        jobs = jobs_from_env()
    # A traced sweep must execute every point: serving a result from the
    # cache would produce no trace file for it.
    use_cache = cache and not _tracing_requested() \
        and (store is not None or cache_enabled())
    if use_cache and store is None:
        store = SimCache()

    results: List[Any] = [None] * len(points)
    keys: List[Optional[str]] = [None] * len(points)
    misses: List[int] = []
    if use_cache:
        scale = scale or os.environ.get("REPRO_SCALE", "quick")
        for i, point in enumerate(points):
            try:
                keys[i] = point_key(point.name, point.args, point.kwargs,
                                    scale)
            except Unkeyable:
                misses.append(i)
                continue
            value = store.get(keys[i])
            if value is MISS:
                misses.append(i)
            else:
                san = _sanitizer()
                if san is not None and san.should_audit_hit():
                    # Recompute serially in the parent and compare: a
                    # divergence means the key omits an input that
                    # influences the result (MC2501's dynamic oracle).
                    san.audit_hit(point.name, keys[i], value,
                                  lambda p=point: p.fn(*p.args, **p.kwargs))
                results[i] = value
    else:
        misses = list(range(len(points)))

    if misses:
        todo = [points[i] for i in misses]
        if jobs > 1 and len(todo) > 1 and _fork_available():
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(todo)),
                    mp_context=context,
                    initializer=_init_worker) as pool:
                # Executor.map yields results in submission order — the
                # merge is deterministic no matter which worker finishes
                # first.
                fresh = list(pool.map(_run_point, todo))
        else:
            fresh = [_run_point(point) for point in todo]
        for i, value in zip(misses, fresh):
            results[i] = value
            if use_cache and keys[i] is not None:
                store.put(keys[i], points[i].name, value)
    return results
