"""Persistent, content-addressed cache of simulation results.

Simulations here are pure functions of (code, config, workload
parameters, scale): the same inputs always produce bit-identical result
rows.  That makes results safely memoizable — re-running a benchmark
suite after an unrelated edit should not re-simulate exhibits whose
inputs did not change.

Keys are SHA-256 digests over a canonical JSON encoding of the fully
qualified function name, its arguments (dataclasses such as
:class:`~repro.system.config.SystemConfig` are encoded field by field),
the ``REPRO_SCALE`` value, and a *code stamp* — a content hash of every
``.py`` file under ``src/repro`` — so any source change invalidates the
whole store.  Values are stored one JSON file per key under
``results/.simcache/``; only results that survive a JSON round-trip
unchanged are cached, so a cache hit is bit-identical to a fresh run.

Set ``REPRO_SIMCACHE=off`` to bypass the store entirely.  With
``REPRO_SIMSAN=1`` the silent degradations become loud: a structurally
corrupt entry and a value failing the round-trip contract are reported
through :mod:`repro.analysis.simsan` instead of quietly treated as a
miss / left uncached.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Optional, Tuple

#: Sentinel distinguishing "missing" from a cached ``None``.
MISS = object()

_STAMP_CACHE: Dict[str, str] = {}


class Unkeyable(Exception):
    """Raised when a sim point's parameters cannot be canonicalized."""


def _sanitizer():
    """The simsan module when ``REPRO_SIMSAN`` is active, else None."""
    if os.environ.get("REPRO_SIMSAN", "").strip().lower() in (
            "", "0", "off", "false"):
        return None
    from repro.analysis import simsan
    return simsan if simsan.enabled() else None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, OverflowError):
        return False
    except OSError:  # EPERM: someone else's live process
        return True
    return True


def repo_root() -> pathlib.Path:
    """The repository root (``src/repro/perf/`` is three levels down)."""
    return pathlib.Path(__file__).resolve().parents[3]


def default_cache_dir() -> pathlib.Path:
    return repo_root() / "results" / ".simcache"


def cache_enabled() -> bool:
    """False when ``REPRO_SIMCACHE=off`` (any case) is set."""
    return os.environ.get("REPRO_SIMCACHE", "").lower() != "off"


def code_stamp() -> str:
    """Content hash of every ``repro`` source file (cached per process)."""
    src_root = pathlib.Path(__file__).resolve().parents[1]
    key = str(src_root)
    stamp = _STAMP_CACHE.get(key)
    if stamp is None:
        digest = hashlib.sha256()
        for path in sorted(src_root.rglob("*.py")):
            digest.update(str(path.relative_to(src_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        stamp = digest.hexdigest()
        _STAMP_CACHE[key] = stamp
    return stamp


def canonicalize(value: Any) -> Any:
    """A JSON-encodable, deterministic form of a sim-point parameter.

    Dataclass instances (configs) become ``{"__dataclass__": name,
    "fields": {...}}``; tuples become lists.  Anything else that JSON
    cannot express raises :class:`Unkeyable` — the point still runs, it
    just isn't cached.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": f"{type(value).__module__}."
                             f"{type(value).__qualname__}",
            "fields": {k: canonicalize(v) for k, v in sorted(
                dataclasses.asdict(value).items())},
        }
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            raise Unkeyable(f"non-string dict keys in {value!r}")
        return {k: canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    raise Unkeyable(f"cannot canonicalize {type(value).__name__}: {value!r}")


def point_key(fn_name: str, args: Tuple, kwargs: Dict[str, Any],
              scale: str) -> str:
    """The content-addressed key for one (fn, params, scale) point."""
    payload = {
        "fn": fn_name,
        "args": canonicalize(list(args)),
        "kwargs": canonicalize(dict(kwargs)),
        "scale": scale,
        "code": code_stamp(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SimCache:
    """A directory of ``<key-prefix>/<key>.json`` result files."""

    def __init__(self, root: Optional[pathlib.Path] = None):
        self.root = pathlib.Path(root) if root else default_cache_dir()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def sweeps_dir(self) -> pathlib.Path:
        """Where sweep journals and failure reports live (repro.resilience)."""
        return self.root / ".sweeps"

    def _entry_files(self):
        """Result files only — shard dirs are two hex chars, which keeps
        ``.sweeps`` journals/reports out of entry counts."""
        if not self.root.exists():
            return
        for path in self.root.rglob("*.json"):
            if path.parent != self.root and len(path.parent.name) == 2:
                yield path

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry aside so it is never re-read or re-parsed.

        The rename is atomic and collision-free per key; losing the race
        to a concurrent reader (file already moved) is fine.
        """
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            pass

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        A missing file is an ordinary miss.  A file that exists but does
        not parse into the expected shape is quarantined (renamed to
        ``<key>.corrupt``) so every future run takes the cheap
        missing-file path instead of re-reading and re-parsing the
        corpse — and, under ``REPRO_SIMSAN``, the corruption is
        reported instead of silently degraded.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            return MISS
        except json.JSONDecodeError:
            payload = None
        if not (isinstance(payload, dict)
                and "fn" in payload and "value" in payload):
            self._quarantine(path)
            san = _sanitizer()
            if san is not None:
                san.check_payload(str(path), payload)
            return MISS
        return payload["value"]

    def put(self, key: str, fn_name: str, value: Any) -> bool:
        """Store ``value`` if a JSON round-trip reproduces it exactly.

        The round-trip check is what makes hits bit-identical to fresh
        runs: a result JSON cannot represent (tuples, int dict keys,
        NaN) is simply not cached.  Writes are atomic (tmp + rename) so
        parallel writers never expose a torn file.
        """
        try:
            blob = json.dumps({"fn": fn_name, "value": value},
                              sort_keys=True, allow_nan=False)
        except (TypeError, ValueError) as exc:
            san = _sanitizer()
            if san is not None:
                san.report_unroundtrippable(fn_name, str(exc))
            return False
        if json.loads(blob)["value"] != value:
            san = _sanitizer()
            if san is not None:
                san.report_unroundtrippable(
                    fn_name, "decode does not compare equal to the "
                             "original (tuples/sets/non-str keys?)")
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(blob + "\n", encoding="utf-8")
            os.replace(tmp, path)
        finally:
            # A failed write (disk full, signal mid-write) must not leak
            # the temp file forever; after a successful rename the
            # unlink is a no-op.
            try:
                tmp.unlink()
            except OSError:
                pass
        return True

    def _sweep_stale_tmp(self) -> int:
        """Remove ``*.tmp.<pid>`` droppings from writers that died.

        A live ``put`` always cleans up after itself, so any temp file
        whose pid suffix no longer names a running process is an
        orphan from an earlier, killed run.  Unparsable suffixes are
        treated as orphans too.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for tmp in self.root.rglob("*.tmp.*"):
            suffix = tmp.name.rsplit(".", 1)[-1]
            try:
                alive = _pid_alive(int(suffix))
            except ValueError:
                alive = False
            if not alive:
                try:
                    tmp.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> int:
        """Delete every cached result; returns the number removed.

        Also sweeps quarantined ``*.corrupt`` entries, stale temp files,
        and the ``.sweeps`` journals/reports.
        """
        removed = 0
        if self.root.exists():
            for pattern in ("*.json", "*.corrupt", "*.tmp.*"):
                for path in self.root.rglob(pattern):
                    if path.is_file():
                        path.unlink()
                        removed += 1
            if self.sweeps_dir.exists():
                for path in sorted(self.sweeps_dir.glob("*")):
                    if path.is_file():
                        path.unlink()
            for child in sorted(self.root.iterdir()):
                if child.is_dir() and not any(child.iterdir()):
                    child.rmdir()
        return removed

    def info(self) -> Dict[str, Any]:
        """Entry count and health, for ``python -m repro.perf cache``.

        Reading the stats doubles as janitor duty: stale temp files
        from dead writers are swept here (and in :meth:`clear`).
        """
        swept = self._sweep_stale_tmp()
        entries = list(self._entry_files())
        corrupt = ([p for p in self.root.rglob("*.corrupt")]
                   if self.root.exists() else [])
        journals = ([p for p in self.sweeps_dir.glob("*.journal.jsonl")]
                    if self.sweeps_dir.exists() else [])
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "enabled": cache_enabled(),
            "quarantined": len(corrupt),
            "stale_tmp_swept": swept,
            "journals": len(journals),
        }
