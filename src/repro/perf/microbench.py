"""Simulator-speed microbenchmarks (host events/sec, not paper data).

Two measurements, both recorded into ``BENCH_sim.json``:

* :func:`engine_events_per_sec` — the bare event loop draining a
  self-rearming schedule, isolating engine overhead from workload
  callbacks;
* :func:`fig12_point` — one representative exhibit point (sequential
  destination access under (MC)², the hottest benchmark family), whose
  events/sec reflects the end-to-end hot path: engine + cache hierarchy
  + controllers;
* :func:`fig13_point` — the random-access counterpart (a pointer chase
  through the copied buffer), covering the cache-miss-heavy locality
  regime the sequential point never exercises.

:func:`calibrate_ops_per_sec` runs a fixed pure-Python loop so CI can
compare events/sec *ratios* across machines of different speeds: the
gate checks ``events_per_sec / calibration`` against a checked-in
baseline instead of absolute numbers.

:func:`seq_access_stats_point` is the determinism probe: the same
fig12-style simulation returning the full flattened
:class:`~repro.sim.stats.StatGroup`, used by the parallel-determinism
tests to prove worker processes reproduce every counter bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.common.units import KB
from repro.perf.hostclock import host_seconds
from repro.sim.engine import Simulator
from repro.system.config import SystemConfig


def engine_events_per_sec(num_events: int = 200_000,
                          trains: int = 4) -> Dict[str, float]:
    """Drain ``num_events`` trivial self-rearming events; report speed."""
    sim = Simulator()
    budget = [num_events]

    def make_callback(period: int):
        def callback() -> None:
            budget[0] -= 1
            if budget[0] > 0:
                sim.schedule(period, callback)
        return callback

    for train in range(trains):
        sim.schedule(train + 1, make_callback(train + 1))
    start = host_seconds()
    sim.run()
    seconds = host_seconds() - start
    fired = sim.events_fired
    return {
        "events": fired,
        "seconds": seconds,
        "events_per_sec": fired / seconds if seconds > 0 else 0.0,
    }


def fig12_point(buffer_size: int = 256 * KB,
                fraction: float = 0.5) -> Dict[str, float]:
    """Time one fig12-style point; events/sec of the full system."""
    result = seq_access_stats_point(buffer_size=buffer_size,
                                    fraction=fraction, with_stats=False,
                                    timed=True)
    return {
        "events": result["events"],
        "cycles": result["cycles"],
        "seconds": result["seconds"],
        "events_per_sec": (result["events"] / result["seconds"]
                           if result["seconds"] > 0 else 0.0),
    }


def fig13_point(buffer_size: int = 256 * KB,
                fraction: float = 0.25) -> Dict[str, float]:
    """Time one fig13-style point; events/sec of the pointer chase."""
    result = rand_access_stats_point(buffer_size=buffer_size,
                                     fraction=fraction, with_stats=False,
                                     timed=True)
    return {
        "events": result["events"],
        "cycles": result["cycles"],
        "seconds": result["seconds"],
        "events_per_sec": (result["events"] / result["seconds"]
                           if result["seconds"] > 0 else 0.0),
    }


def seq_access_stats_point(buffer_size: int = 64 * KB,
                           fraction: float = 0.5,
                           engine_name: str = "mcsquare",
                           with_stats: bool = True,
                           timed: bool = False,
                           profiled: bool = False) -> Dict[str, Any]:
    """Run the fig12 access pattern, returning counters (and stats).

    A copy of the :func:`~repro.workloads.micro.access
    .run_sequential_access` program that additionally exposes
    ``events`` fired and (optionally) every flattened stat — the
    quantities the workload helpers deliberately keep out of their row
    dicts.  Module-level and picklable, so it can ride through
    :func:`~repro.perf.runner.sim_map`.
    """
    from repro.analysis.figures import ACCESS_CONFIG
    from repro.common.units import CACHELINE_SIZE
    from repro.isa import ops
    from repro.system.system import System
    from repro.workloads.common import (LatencyRecorder, fill_pattern,
                                        make_engine)

    config: SystemConfig = ACCESS_CONFIG
    system = System(config)
    engine = make_engine(engine_name, system)
    if profiled:
        from repro.perf.profile import profile_simulator
        profile_simulator(system.sim)
    src = system.alloc(buffer_size + 4096, align=4096) + 16
    dst = system.alloc(buffer_size + 4096, align=4096)
    fill_pattern(system, src, buffer_size)
    recorder = LatencyRecorder()
    read_bytes = int(buffer_size * fraction)

    def program():
        yield recorder.begin()
        yield from engine.copy_ops(dst, src, buffer_size)
        pos = dst
        end = dst + read_bytes
        while pos < end:
            yield from engine.read_ops(pos, 8)
            yield ops.compute(1)
            pos += CACHELINE_SIZE
        yield recorder.end()

    start = host_seconds() if timed else 0.0
    system.run_program(program())
    system.drain()
    seconds = (host_seconds() - start) if timed else 0.0
    result: Dict[str, Any] = {
        "cycles": recorder.samples[0],
        "events": system.sim.events_fired,
        "seconds": seconds,
    }
    if with_stats:
        result["stats"] = system.stats.flatten()
    if profiled:
        result["label_costs"] = system.sim.label_costs()
    return result


def rand_access_stats_point(buffer_size: int = 64 * KB,
                            fraction: float = 0.25,
                            engine_name: str = "mcsquare",
                            with_stats: bool = True,
                            timed: bool = False,
                            seed: int = 42) -> Dict[str, Any]:
    """Run the fig13 access pattern, returning counters (and stats).

    The random-access sibling of :func:`seq_access_stats_point`: copy
    the buffer, then pointer-chase ``fraction`` of its 8-byte elements
    through blocking loads (each address depends on the previous
    value).  Module-level and picklable for the same reasons.
    """
    import struct

    from repro.analysis.figures import ACCESS_CONFIG
    from repro.system.system import System
    from repro.workloads.common import LatencyRecorder, make_engine
    from repro.workloads.micro.access import _build_chain

    config: SystemConfig = ACCESS_CONFIG
    system = System(config)
    engine = make_engine(engine_name, system)
    count = buffer_size // 8
    src = system.alloc(buffer_size + 4096, align=4096) + 16
    dst = system.alloc(buffer_size + 4096, align=4096)
    start_index = _build_chain(system, src, count, seed)
    recorder = LatencyRecorder()
    visits = int(count * fraction)

    def program():
        yield recorder.begin()
        yield from engine.copy_ops(dst, src, buffer_size)
        index = start_index
        for _ in range(visits):
            gen = engine.read_ops(dst + index * 8, 8, blocking=True)
            value = None
            for op in gen:
                value = yield op
            index = struct.unpack("<Q", value)[0]
        yield recorder.end()

    start = host_seconds() if timed else 0.0
    system.run_program(program())
    system.drain()
    seconds = (host_seconds() - start) if timed else 0.0
    result: Dict[str, Any] = {
        "cycles": recorder.samples[0],
        "events": system.sim.events_fired,
        "seconds": seconds,
    }
    if with_stats:
        result["stats"] = system.stats.flatten()
    return result


def calibrate_ops_per_sec(iterations: int = 2_000_000) -> float:
    """Host-speed yardstick: a fixed pure-Python accumulate loop."""
    start = host_seconds()
    acc = 0
    for i in range(iterations):
        acc += i & 0xFF
    seconds = host_seconds() - start
    del acc
    return iterations / seconds if seconds > 0 else 0.0


def run_microbench(num_events: int = 200_000,
                   repeats: int = 3,
                   config: Optional[SystemConfig] = None
                   ) -> Dict[str, float]:
    """Best-of-``repeats`` engine and fig12 speeds plus calibration."""
    del config  # reserved for future variants
    engine_best = max((engine_events_per_sec(num_events) for _ in
                       range(repeats)), key=lambda r: r["events_per_sec"])
    fig12_best = max((fig12_point() for _ in range(repeats)),
                     key=lambda r: r["events_per_sec"])
    fig13_best = max((fig13_point() for _ in range(repeats)),
                     key=lambda r: r["events_per_sec"])
    calibration = calibrate_ops_per_sec()
    return {
        "engine_events_per_sec": round(engine_best["events_per_sec"], 1),
        "engine_events": engine_best["events"],
        "fig12_events_per_sec": round(fig12_best["events_per_sec"], 1),
        "fig12_events": fig12_best["events"],
        "fig12_cycles": fig12_best["cycles"],
        "fig13_events_per_sec": round(fig13_best["events_per_sec"], 1),
        "fig13_events": fig13_best["events"],
        "fig13_cycles": fig13_best["cycles"],
        "calibration_ops_per_sec": round(calibration, 1),
        "engine_per_calibration_op": round(
            engine_best["events_per_sec"] / calibration, 4),
        "fig12_per_calibration_op": round(
            fig12_best["events_per_sec"] / calibration, 4),
        "fig13_per_calibration_op": round(
            fig13_best["events_per_sec"] / calibration, 4),
    }
