"""Performance bookkeeping: ``results/BENCH_sim.json``.

One JSON file tracks the simulator's own speed from PR to PR:

* ``engine`` — events/sec of the bare event loop and of a
  representative fig12-style workload point (see
  :mod:`repro.perf.microbench`), plus the host-calibration ops/sec used
  to normalize across machines;
* ``label_costs`` — per-label event-cost histograms from
  :meth:`Simulator.enable_profiling`;
* ``exhibits`` — wall-clock seconds per regenerated paper exhibit
  (recorded by ``benchmarks/conftest.py``).

Updates are merge-writes: each recorder rewrites only its own section,
so benchmark runs, microbenchmarks, and CI smoke jobs can all append to
the same file.  All timing flows through
:func:`repro.perf.hostclock.host_seconds` — simulation code itself
never reads the host clock.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional

from repro.perf.cache import repo_root
from repro.perf.hostclock import host_seconds

BENCH_FILENAME = "BENCH_sim.json"


def bench_path() -> pathlib.Path:
    return repo_root() / "results" / BENCH_FILENAME


def load_bench(path: Optional[pathlib.Path] = None) -> Dict[str, Any]:
    """The current benchmark record ({} when absent or unreadable)."""
    path = path or bench_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return data if isinstance(data, dict) else {}
    except (OSError, json.JSONDecodeError):
        return {}


def update_bench(section: str, payload: Dict[str, Any],
                 path: Optional[pathlib.Path] = None) -> Dict[str, Any]:
    """Merge ``payload`` into ``section`` and rewrite the file atomically."""
    path = path or bench_path()
    data = load_bench(path)
    merged = dict(data.get(section) or {})
    merged.update(payload)
    data[section] = merged
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return data


def record_exhibit(name: str, seconds: float,
                   path: Optional[pathlib.Path] = None) -> None:
    """Record one exhibit's wall clock (jobs/scale noted alongside)."""
    update_bench("exhibits", {name: {
        "seconds": round(seconds, 4),
        "jobs": os.environ.get("REPRO_JOBS", "1"),
        "scale": os.environ.get("REPRO_SCALE", "quick"),
    }}, path=path)


def record_engine(payload: Dict[str, Any],
                  path: Optional[pathlib.Path] = None) -> None:
    """Record engine microbenchmark numbers (events/sec etc.)."""
    update_bench("engine", payload, path=path)


def record_label_costs(costs: Dict[str, Dict[str, float]],
                       path: Optional[pathlib.Path] = None) -> None:
    """Record a per-label event-cost histogram from a profiled run."""
    update_bench("label_costs", costs, path=path)


def format_top_labels(costs: Dict[str, Dict[str, float]],
                      limit: int = 20) -> str:
    """Top-``limit`` labels by cumulative seconds, as a plain table.

    ``costs`` is the :meth:`Simulator.label_costs` shape
    (label -> count/total_s/min_s/max_s); the rendered report is what
    ``python -m repro.perf micro --profile`` writes for CI to archive.
    """
    ranked = sorted(costs.items(), key=lambda item: item[1]["total_s"],
                    reverse=True)[:limit]
    total = sum(bucket["total_s"] for bucket in costs.values()) or 1.0
    lines = [f"{'label':40s} {'count':>10s} {'total_s':>10s} "
             f"{'mean_us':>9s} {'share':>6s}"]
    for label, bucket in ranked:
        count = bucket["count"]
        mean_us = bucket["total_s"] / count * 1e6 if count else 0.0
        lines.append(f"{label[:40]:40s} {count:>10.0f} "
                     f"{bucket['total_s']:>10.4f} {mean_us:>9.2f} "
                     f"{bucket['total_s'] / total:>6.1%}")
    return "\n".join(lines)


def profile_report_path() -> pathlib.Path:
    return repo_root() / "results" / "PROFILE_micro.txt"


class Stopwatch:
    """``with Stopwatch() as sw: ...; sw.seconds`` — host wall clock."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = host_seconds()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = host_seconds() - self._start


def profile_simulator(sim) -> None:
    """Attach host-clock profiling to ``sim`` (per-label event costs)."""
    sim.enable_profiling(host_seconds)
