"""Simplified out-of-order core model."""

from repro.cpu.core import Core, Program

__all__ = ["Core", "Program"]
