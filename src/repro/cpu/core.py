"""Simplified out-of-order core model.

The core executes a *program* — a Python generator yielding
:class:`~repro.isa.ops.Op` objects — under the resource limits that drive
the paper's memcpy analysis (§II):

* a bounded instruction window (ROB): ops retire in order, so a stalled
  head op blocks the window and eventually the whole core ("Mem miss
  stall cycles", Fig. 3);
* a bounded store buffer shared by stores, CLWB flushes, non-temporal
  stores and MCLAZY/MCFREE packets: once full, further such ops serialize
  (the >1KB knee in Fig. 11);
* MSHR-bounded memory-level parallelism (inside the cache hierarchy);
* ``blocking`` loads suspend the program until the value returns, which
  serializes pointer chases (Fig. 13);
* MFENCE completes only when every older op — including outstanding
  writebacks and lazy-copy packets — has completed (§III-C).

The core is event-driven: :meth:`_pump` advances issue whenever a
resource frees, and in-order retirement frees window slots.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generator, Optional

from repro.common import params
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import SimulationError
from repro.isa.ops import Op, OpKind
from repro.sim.engine import Simulator
from repro.sim.shard import shard_local
from repro.sim.stats import StatGroup

Program = Generator[Op, Optional[bytes], None]

_ISSUE_COST = {
    OpKind.LOAD: 1,
    OpKind.STORE: 1,
    OpKind.NT_STORE: params.NT_STORE_CYCLES,
    OpKind.CLWB: params.CLWB_ISSUE_CYCLES,
    OpKind.MCLAZY: params.MCLAZY_ISSUE_CYCLES,
    OpKind.MCFREE: params.MCLAZY_ISSUE_CYCLES,
    OpKind.INMEM_COPY: params.MCLAZY_ISSUE_CYCLES,
    OpKind.MFENCE: 1,
    OpKind.COMPUTE: 0,
    OpKind.BULK_COPY: 1,
    OpKind.CLWB_RANGE: 4,
}


@shard_local(domain="cpu")
class Core:
    """One simulated CPU core executing one program at a time."""

    def __init__(self, sim: Simulator, core_id: int,
                 hierarchy: CacheHierarchy, stats: StatGroup,
                 rob_entries: int = params.ROB_ENTRIES,
                 store_buffer_entries: int = params.STORE_BUFFER_ENTRIES):
        self.sim = sim
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.stats = stats
        self.rob_entries = rob_entries
        self.store_buffer_entries = store_buffer_entries

        self._window: Deque[Op] = deque()
        self._gen: Optional[Program] = None
        self._gen_started = False
        self._awaiting: Optional[Op] = None  # blocking load in flight
        self._pending_op: Optional[Op] = None  # pulled but not yet issued
        self._fence: Optional[Op] = None
        self._serializing: Optional[Op] = None  # e.g. BULK_COPY
        self._sb_used = 0
        # Pending (not yet drained) stores for store-to-load forwarding:
        # list of [addr, size, data].
        self._pending_stores: list = []
        self._next_issue_at = 0
        self._exhausted = True
        self._on_finish: Optional[Callable[[int], None]] = None
        self._pump_scheduled = False
        # Hot-path bindings: _schedule_pump runs several times per op, so
        # the label and entry callback are built once, not per schedule.
        self._pump_label = f"core{core_id}-pump"
        self._pump_entry = self._run_pump

        # -------- statistics ---------------------------------------------
        self.ops_retired = stats.counter("ops_retired", "ops retired")
        self.loads = stats.counter("loads", "load ops")
        self.stores = stats.counter("stores", "store ops")
        self.mem_miss_cycles = stats.counter(
            "mem_miss_cycles", "cycles with >=1 outstanding memory read")
        self.stall_cycles = stats.counter(
            "stall_cycles", "cycles issue was fully blocked on memory")
        self.sb_full_stalls = stats.counter(
            "sb_full_stalls", "issue attempts blocked by a full store buffer")
        self._outstanding_mem = 0
        self._mem_busy_since: Optional[int] = None
        self._stall_since: Optional[int] = None

    # ------------------------------------------------------------ control
    @property
    def idle(self) -> bool:
        """True when no program is running and all work has drained."""
        return (self._exhausted and not self._window
                and self._pending_op is None and self._sb_used == 0)

    def run_program(self, program: Program,
                    on_finish: Optional[Callable[[int], None]] = None) -> None:
        """Start executing ``program``; ``on_finish(cycle)`` fires at drain."""
        if not self.idle:
            raise SimulationError(f"core {self.core_id} is busy")
        self._gen = program
        self._gen_started = False
        self._exhausted = False
        self._on_finish = on_finish
        self._next_issue_at = self.sim.now
        if not self._pump_scheduled:
            self._schedule_pump()

    # ------------------------------------------------------------ pumping
    def _schedule_pump(self, delay: int = 0) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        # Late phase: the pump is the core's issue *arbiter* — it must
        # observe every same-cycle completion / resume / buffer release
        # before deciding what issues this cycle, no matter how the
        # tie-break orders those events (see repro.sim.engine).
        self.sim.schedule(delay, self._pump_entry, label=self._pump_label,
                          phase=1)

    def _run_pump(self) -> None:
        self._pump_scheduled = False
        self._pump()

    def _pump(self) -> None:
        """Issue as many ops as resources allow at the current cycle."""
        # Loop-invariant bindings (the mutable gates — _awaiting, _fence,
        # _serializing, _pending_op — are re-read each iteration because
        # _issue flips them mid-loop).
        window = self._window
        rob = self.rob_entries
        sb_limit = self.store_buffer_entries
        sb_kinds = self._SB_KINDS
        sim = self.sim
        while True:
            if self._awaiting is not None:
                self._note_stall()
                return
            fence = self._fence
            if fence is not None and fence.completed_at is None:
                return  # fence blocks younger ops entirely
            serializing = self._serializing
            if serializing is not None and serializing.completed_at is None:
                self._note_stall()
                return  # kernel bulk copy blocks younger ops
            if len(window) >= rob:
                self._note_stall()
                return
            op = self._pending_op or self._pull()
            if op is None:
                self._maybe_finish()
                return
            self._pending_op = op
            if op.kind in sb_kinds and self._sb_used >= sb_limit:
                self.sb_full_stalls.value += 1
                self._note_stall()
                return
            now = sim.now
            if self._next_issue_at > now:
                self._schedule_pump(self._next_issue_at - now)
                return
            self._pending_op = None
            self._clear_stall()
            self._issue(op)

    def _pull(self) -> Optional[Op]:
        if self._exhausted or self._gen is None:
            return None
        try:
            if not self._gen_started:
                self._gen_started = True
                return next(self._gen)
            return self._gen.send(None)
        except StopIteration:
            self._exhausted = True
            return None

    def _resume_with_value(self, value: bytes) -> None:
        """Feed a blocking load's value back into the program."""
        self._awaiting = None
        if self._gen is None:
            return
        try:
            op = self._gen.send(value)
            self._pending_op = op
        except StopIteration:
            self._exhausted = True
        if not self._pump_scheduled:
            self._schedule_pump()

    def _forward_from_store_buffer(self, addr: int,
                                   size: int) -> Optional[bytes]:
        """Newest pending store fully covering [addr, addr+size), if any."""
        for entry in reversed(self._pending_stores):
            s_addr, s_size, s_data = entry
            if s_addr <= addr and addr + size <= s_addr + s_size:
                offset = addr - s_addr
                return bytes(s_data[offset:offset + size])
        return None

    def _older_store_overlaps(self, entry) -> bool:
        """Is an older pending store byte-overlapping ``entry``'s range?"""
        addr, size, _ = entry
        end = addr + size
        for other in self._pending_stores:
            if other is entry:
                return False
            o_addr, o_size, _ = other
            if o_addr < end and addr < o_addr + o_size:
                return True
        return False

    def _pending_store_overlap(self, addr: int, size: int) -> bool:
        """Any not-yet-drained store touching [addr, addr+size)?"""
        end = addr + size
        for s_addr, s_size, _ in self._pending_stores:
            if s_addr < end and addr < s_addr + s_size:
                return True
        return False

    def _dispatch_after_stores(self, ranges, action) -> None:
        """Run ``action`` once no pending store overlaps ``ranges``.

        Models the x86 ordering of CLWB (and our new MCLAZY / kernel
        copies) with respect to *older stores to the affected lines*:
        the flush/packet must observe them.
        """
        def _try() -> None:
            if any(self._pending_store_overlap(a, s) for a, s in ranges):
                # Late phase: the retry polls store-buffer state, so it
                # must not race same-cycle drains.
                self.sim.schedule(5, _try, label="order-wait", phase=1)
            else:
                action()

        _try()

    # -------------------------------------------------------------- issue
    _SB_KINDS = frozenset((OpKind.STORE, OpKind.NT_STORE, OpKind.CLWB,
                           OpKind.CLWB_RANGE, OpKind.MCLAZY, OpKind.MCFREE,
                           OpKind.INMEM_COPY))

    @staticmethod
    def _needs_sb_slot(op: Op) -> bool:
        return op.kind in Core._SB_KINDS

    def _issue(self, op: Op) -> None:
        now = self.sim.now
        op.issued_at = now
        self._next_issue_at = now + _ISSUE_COST[op.kind]
        self._window.append(op)
        kind = op.kind

        if kind is OpKind.COMPUTE:
            self._next_issue_at = self.sim.now + op.cycles
            done = self.sim.now + max(op.cycles, 1)
            self.sim.schedule_at(done, lambda: self._complete(op),
                                 label="compute-done")
        elif kind is OpKind.LOAD:
            self.loads.value += 1
            forwarded = self._forward_from_store_buffer(op.addr, op.size)
            if forwarded is not None:
                op.value = forwarded
                done = self.sim.now + 5  # store-to-load forward latency

                def _fwd() -> None:
                    self._complete(op)
                    if op.blocking:
                        self._resume_with_value(forwarded)

                if op.blocking:
                    self._awaiting = op
                self.sim.schedule_at(done, _fwd, label="stl-forward")
                if not self._pump_scheduled:
                    self._schedule_pump()
                return
            self._mem_begin()
            if op.blocking:
                self._awaiting = op

            def _loaded(data: bytes, finish: int) -> None:
                op.value = data
                self._mem_end()
                self._complete(op)
                if op.blocking:
                    self._resume_with_value(data)

            if self._pending_store_overlap(op.addr, op.size):
                # Partial overlap with an in-flight store: no forward is
                # possible, so the load stalls until the store drains
                # (x86 replays such loads).
                self._dispatch_after_stores(
                    [(op.addr, op.size)],
                    lambda: self.hierarchy.load(self.core_id, op.addr,
                                                op.size, _loaded))
            else:
                self.hierarchy.load(self.core_id, op.addr, op.size,
                                    _loaded)
        elif kind is OpKind.STORE:
            self.stores.value += 1
            self._sb_used += 1
            data = op.data() if callable(op.data) else op.data
            if data is None:
                data = (op.addr & 0xFF).to_bytes(1, "little") * op.size
            entry = [op.addr, op.size, data]
            self._pending_stores.append(entry)
            self.sim.schedule(1, lambda: self._complete(op),
                              label="store-issued")

            def _drained(finish: int) -> None:
                self._pending_stores.remove(entry)
                self._sb_free()

            def _dispatch() -> None:
                # Same-address stores must commit in program order: an
                # older overlapping store whose RFO is still in flight
                # would otherwise land *after* this one and resurrect
                # stale data.
                if self._older_store_overlaps(entry):
                    self.sim.schedule(5, _dispatch, label="st-st-order",
                                      phase=1)
                    return
                self.hierarchy.store(self.core_id, op.addr, op.size, data,
                                     _drained)

            _dispatch()
        elif kind is OpKind.NT_STORE:
            self.stores.value += 1
            self._sb_used += 1
            data = op.data() if callable(op.data) else op.data
            if data is None:
                data = (op.addr & 0xFF).to_bytes(1, "little") * op.size
            self.sim.schedule(1, lambda: self._complete(op),
                              label="ntstore-issued")
            self.hierarchy.nt_store(self.core_id, op.addr, op.size, data,
                                    lambda finish: self._sb_free())
        elif kind is OpKind.CLWB:
            self._sb_used += 1
            self.sim.schedule(1, lambda: self._complete(op),
                              label="clwb-issued")
            self._dispatch_after_stores(
                [(op.addr, op.size)],
                lambda: self.hierarchy.clwb(self.core_id, op.addr,
                                            lambda finish: self._sb_free()))
        elif kind is OpKind.CLWB_RANGE:
            self._sb_used += 1
            self.sim.schedule(1, lambda: self._complete(op),
                              label="clwb-range-issued")
            self._dispatch_after_stores(
                [(op.addr, op.size)],
                lambda: self.hierarchy.clwb_range(
                    self.core_id, op.addr, op.size,
                    lambda finish: self._sb_free()))
        elif kind is OpKind.MCLAZY:
            self._sb_used += 1
            self.sim.schedule(1, lambda: self._complete(op),
                              label="mclazy-issued")
            self._dispatch_after_stores(
                [(op.src_addr, op.size), (op.addr, op.size)],
                lambda: self.hierarchy.handle_mclazy(
                    self.core_id, op.addr, op.src_addr, op.size,
                    lambda finish: self._sb_free()))
        elif kind is OpKind.INMEM_COPY:
            # Offloaded in-DRAM copy: issues like MCLAZY (descriptor
            # build + send) but the store-buffer slot is held until
            # every channel finishes its share, so a later MFENCE
            # orders after the clone itself, not just the send.
            self._sb_used += 1
            self.sim.schedule(1, lambda: self._complete(op),
                              label="inmem-copy-issued")
            self._dispatch_after_stores(
                [(op.src_addr, op.size), (op.addr, op.size)],
                lambda: self.hierarchy.handle_inmem_copy(
                    self.core_id, op.addr, op.src_addr, op.size,
                    op.copy_mode or "rowclone",
                    lambda finish: self._sb_free()))
        elif kind is OpKind.MCFREE:
            self._sb_used += 1
            self.sim.schedule(1, lambda: self._complete(op),
                              label="mcfree-issued")
            self.hierarchy.handle_mcfree(self.core_id, op.addr, op.size,
                                         lambda finish: self._sb_free())
        elif kind is OpKind.BULK_COPY:
            self._mem_begin()
            self._serializing = op

            def _copied(finish: int) -> None:
                self._serializing = None
                self._mem_end()
                self._complete(op)

            self._dispatch_after_stores(
                [(op.src_addr, op.size), (op.addr, op.size)],
                lambda: self.hierarchy.bulk_copy(
                    self.core_id, op.addr, op.src_addr, op.size, _copied))
        elif kind is OpKind.MFENCE:
            self._fence = op
            self._try_fence()
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unknown op kind {kind}")
        if not self._pump_scheduled:
            self._schedule_pump()

    # -------------------------------------------------------- completion
    def _complete(self, op: Op) -> None:
        op.completed_at = self.sim.now
        self._retire()
        if self._fence is not None:
            self._try_fence()
        if not self._pump_scheduled:
            self._schedule_pump()

    def _retire(self) -> None:
        while self._window and self._window[0].completed_at is not None:
            op = self._window.popleft()
            op.retired_at = self.sim.now
            self.ops_retired.value += 1
            if op.on_retire is not None:
                op.on_retire(op, self.sim.now)
        self._maybe_finish()

    def _try_fence(self) -> None:
        """Complete the fence once all older work has drained."""
        fence = self._fence
        if fence is None or fence.completed_at is not None:
            return
        older_done = all(o.completed_at is not None
                         for o in self._window if o is not fence)
        if older_done and self._sb_used == 0:
            done = self.sim.now + params.MFENCE_CYCLES

            def _fence_done() -> None:
                if fence.completed_at is None:
                    fence.completed_at = self.sim.now
                    self._fence = None
                    self._retire()
                    if not self._pump_scheduled:
                        self._schedule_pump()

            self.sim.schedule_at(done, _fence_done, label="mfence-done")

    def _sb_free(self) -> None:
        self._sb_used -= 1
        if self._fence is not None:
            self._try_fence()
        if not self._pump_scheduled:
            self._schedule_pump()

    def _maybe_finish(self) -> None:
        if self.idle and self._on_finish is not None:
            callback = self._on_finish
            self._on_finish = None
            callback(self.sim.now)

    # -------------------------------------------------------- accounting
    def _mem_begin(self) -> None:
        if self._outstanding_mem == 0:
            self._mem_busy_since = self.sim.now
        self._outstanding_mem += 1

    def _mem_end(self) -> None:
        self._outstanding_mem -= 1
        if self._outstanding_mem == 0 and self._mem_busy_since is not None:
            self.mem_miss_cycles.inc(self.sim.now - self._mem_busy_since)
            self._mem_busy_since = None

    def _note_stall(self) -> None:
        if self._stall_since is None and self._outstanding_mem > 0:
            self._stall_since = self.sim.now

    def _clear_stall(self) -> None:
        if self._stall_since is not None:
            self.stall_cycles.inc(self.sim.now - self._stall_since)
            self._stall_since = None
