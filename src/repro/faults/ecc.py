"""SEC-DED ECC model for DRAM line corruption.

Server DRAM protects each 64-bit word with a (72,64) Hamming SEC-DED
code: any single-bit error is corrected transparently, any double-bit
error is *detected* but not correctable (the platform poisons the line),
and three or more flipped bits can alias onto a valid codeword and slip
through silently.  We model the same three outcomes at cacheline
granularity, which is how the memory controller observes them:

* ``CORRECTED``  — data unchanged (the scrub fixed it), counted;
* ``DETECTED``   — data corrupted **and** the line poisoned, so every
  consumer (bounce, materialization, writeback) sees known-bad data and
  must propagate the poison instead of laundering it as clean bytes;
* ``SILENT``     — data corrupted with no poison: undetectable by the
  hardware, and exactly what the differential oracle exists to catch.

The classification is deliberately simple (bit count → outcome) because
the repro needs deterministic, seedable behaviour, not a coding-theory
simulation: 1 flipped bit is always correctable, 2 always detectable,
3+ modelled as silent aliasing (the worst case for SEC-DED).
"""

from __future__ import annotations

import enum
import random
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.units import CACHELINE_SIZE, align_down
from repro.mem.backing_store import BackingStore
from repro.sim.stats import StatGroup


class EccOutcome(enum.Enum):
    """What the SEC-DED logic reports for one corrupted line."""

    CORRECTED = "corrected"    # single-bit: fixed in place
    DETECTED = "detected"      # double-bit: data bad, line poisoned
    SILENT = "silent"          # 3+ bits: aliased onto a valid codeword


def classify(bits_flipped: int) -> EccOutcome:
    """SEC-DED outcome for ``bits_flipped`` errors in one line."""
    if bits_flipped <= 0:
        raise ConfigError("need at least one flipped bit")
    if bits_flipped == 1:
        return EccOutcome.CORRECTED
    if bits_flipped == 2:
        return EccOutcome.DETECTED
    return EccOutcome.SILENT


class EccModel:
    """Applies bit flips to a :class:`BackingStore` and accounts outcomes."""

    def __init__(self, backing: BackingStore,
                 stats: Optional[StatGroup] = None):
        self.backing = backing
        stats = stats or StatGroup("ecc")
        self.stats = stats
        self._corrected = stats.counter(
            "corrected", "single-bit errors fixed by SEC-DED")
        self._detected = stats.counter(
            "detected", "double-bit errors detected; line poisoned")
        self._silent = stats.counter(
            "silent", "3+ bit errors aliased past SEC-DED")

    def corrupt_line(self, addr: int, bits: int,
                     rng: random.Random) -> EccOutcome:
        """Flip ``bits`` distinct random bits in the line at ``addr``.

        Returns the SEC-DED outcome.  CORRECTED leaves the data intact
        (the correction is instantaneous at this abstraction level);
        DETECTED corrupts the data and poisons the line; SILENT corrupts
        the data and leaves no trace.
        """
        outcome = classify(bits)
        if outcome is EccOutcome.CORRECTED:
            self._corrected.inc()
            return outcome

        base = align_down(addr, CACHELINE_SIZE)
        line = bytearray(self.backing.read_line(base))
        for position in rng.sample(range(CACHELINE_SIZE * 8), bits):
            line[position // 8] ^= 1 << (position % 8)
        self.backing.write_line(base, bytes(line))
        if outcome is EccOutcome.DETECTED:
            self.backing.poison(base)
            self._detected.inc()
        else:
            self._silent.inc()
        return outcome
