"""Fault injection, poison propagation, and graceful degradation.

This package makes the repro *falsifiable under failure*: instead of only
showing that lazy copies are bit-identical to eager ones on a healthy
machine, it perturbs the machine — DRAM bit flips through a SEC-DED ECC
model, in-order link faults, SRAM upsets in the CTT/BPQ — and lets the
differential oracle check the stronger property that detected errors are
*contained* (poison travels with derived data) while silent errors are
exactly the divergences the oracle reports.

Public surface:

* :class:`EccModel` / :func:`classify` / :class:`EccOutcome` — SEC-DED
  outcomes for corrupted lines (``ecc``);
* :class:`FaultInjector` / :func:`parse_fault_spec` / :func:`from_specs`
  — deterministic seedable injection, CLI spec strings (``injector``);
* :class:`Watchdog` — simulator progress monitoring with a post-mortem
  on livelock (``watchdog``).
"""

from repro.faults.ecc import EccModel, EccOutcome, classify
from repro.faults.injector import FaultInjector, from_specs, parse_fault_spec
from repro.faults.watchdog import Watchdog

__all__ = [
    "EccModel",
    "EccOutcome",
    "classify",
    "FaultInjector",
    "from_specs",
    "parse_fault_spec",
    "Watchdog",
]
