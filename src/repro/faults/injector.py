"""Deterministic, seedable fault injection for the simulated machine.

The injector perturbs a running :class:`~repro.system.system.System` in
the ways real memory systems fail, while keeping every run reproducible
(one ``random.Random`` seeded at construction; no global randomness):

* **DRAM bit flips** through the SEC-DED model in :mod:`repro.faults.ecc`
  — correctable, detected-uncorrectable (poisoning), or silent;
* **link faults** on the LLC↔MC interconnect.  Real DDR/CXL links detect
  corrupted flits by CRC and *retransmit in order*, so a "dropped" packet
  is modelled as a retransmission delay, a marginal link as extra latency,
  and a replay glitch as a duplicate delivery — none of which may reorder
  traffic, because the paper's consistency argument (§III-B1) leans on
  FIFO delivery from the caches to the MC;
* **structure drops**: invalidating a live CTT entry or discarding a
  parked BPQ write mid-flight, modelling SRAM upsets in the (MC)²
  structures themselves.  These are *silent* state losses the
  differential oracle is designed to expose.

Faults are described by compact spec strings (``--inject`` on the CLI)::

    bitflip:addr=0x1000,bits=2,at=5000   # 2-bit flip (DUE) at cycle 5000
    pkt-drop:p=0.01                      # 1% CRC retransmissions
    pkt-dup:p=0.005                      # 0.5% duplicate deliveries
    pkt-delay:p=0.05,cycles=40           # 5% of packets +40 cycles
    ctt-drop:at=8000                     # lose a random CTT entry
    bpq-drop:at=8000                     # lose a random parked write

All counters live under the ``faults`` stat group so any run can report
exactly what was injected.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common import params
from repro.common.errors import FaultSpecError
from repro.common.units import CACHELINE_SIZE, align_down
from repro.faults.ecc import EccModel, EccOutcome
from repro.sim.packet import Packet, PacketType

# Allowed keys per spec kind; `p` parses as a float, everything else as an
# int (``int(x, 0)`` so hex addresses work).
_SPEC_KINDS: Dict[str, frozenset] = {
    "bitflip": frozenset({"addr", "bits", "at"}),
    "pkt-drop": frozenset({"p"}),
    "pkt-dup": frozenset({"p"}),
    "pkt-delay": frozenset({"p", "cycles"}),
    "ctt-drop": frozenset({"at"}),
    "bpq-drop": frozenset({"at"}),
}


def parse_fault_spec(text: str) -> Dict[str, object]:
    """Parse one ``kind:key=value,...`` spec into a validated dict."""
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    if kind not in _SPEC_KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r}; expected one of "
            f"{', '.join(sorted(_SPEC_KINDS))}")
    allowed = _SPEC_KINDS[kind]
    spec: Dict[str, object] = {"kind": kind}
    rest = rest.strip()
    if rest:
        for item in rest.split(","):
            key, eq, value = (part.strip() for part in item.partition("="))
            if not eq or not key or not value:
                raise FaultSpecError(
                    f"malformed field {item!r} in {text!r} "
                    f"(expected key=value)")
            if key in spec:
                raise FaultSpecError(f"duplicate field {key!r} in {text!r}")
            if key not in allowed:
                raise FaultSpecError(
                    f"field {key!r} not valid for {kind!r} "
                    f"(allowed: {', '.join(sorted(allowed)) or 'none'})")
            try:
                spec[key] = float(value) if key == "p" else int(value, 0)
            except ValueError:
                raise FaultSpecError(
                    f"cannot parse {key}={value!r} in {text!r}")
    if kind == "bitflip" and "addr" not in spec:
        raise FaultSpecError("bitflip requires addr=...")
    p = spec.get("p")
    if p is not None and not 0.0 <= p <= 1.0:
        raise FaultSpecError(f"probability p={p} outside [0, 1]")
    return spec


class FaultInjector:
    """Injects faults into one :class:`System`, deterministically."""

    def __init__(self, system, seed: int = 0):
        self.system = system
        self.rng = random.Random(seed)
        stats = system.stats.group("faults")
        self.stats = stats
        self.ecc = EccModel(system.backing, stats.group("ecc"))
        self._bitflips = stats.counter(
            "bitflips", "bit-flip fault events injected")
        self._pkt_retransmits = stats.counter(
            "pkt_retransmits", "packets delayed by CRC retransmission")
        self._pkt_dups = stats.counter(
            "pkt_dups", "packets delivered twice (link replay)")
        self._pkt_delays = stats.counter(
            "pkt_delays", "packets delayed by a marginal link")
        self._ctt_drops = stats.counter(
            "ctt_drops", "live CTT entries invalidated (SRAM upset)")
        self._bpq_drops = stats.counter(
            "bpq_drops", "parked BPQ writes discarded (SRAM upset)")
        # Probabilistic link-fault knobs (0.0 = healthy link).
        self.pkt_drop_p = 0.0
        self.pkt_dup_p = 0.0
        self.pkt_delay_p = 0.0
        self.pkt_delay_cycles = 40
        self.installed = False
        # Fault events show up as trace instants when the system was
        # built with a repro.obs tracer attached.
        self._trace = getattr(system, "tracer", None)

    # ----------------------------------------------------------- plumbing
    def install(self) -> "FaultInjector":
        """Hook the interconnect so link faults apply to every packet."""
        self.system.interconnect.fault_hook = self._packet_fault
        self.installed = True
        return self

    def uninstall(self) -> None:
        """Restore the healthy interconnect."""
        # `==` not `is`: bound methods are recreated on each access.
        if self.system.interconnect.fault_hook == self._packet_fault:
            self.system.interconnect.fault_hook = None
        self.installed = False

    def _packet_fault(self, pkt: Packet) -> Optional[Tuple[int, bool]]:
        """Per-packet link perturbation: ``(extra_delay, duplicate)``.

        Delays model CRC retransmission / marginal-link jitter; they are
        applied by the interconnect *before* it advances its in-order
        delivery horizon, so FIFO ordering is preserved.  Duplication is
        restricted to READ/WRITE, which are idempotent at the controller
        (a second completion is a no-op; a second write of the same data
        merges or rewrites identically).
        """
        delay = 0
        duplicate = False
        if self.pkt_drop_p and self.rng.random() < self.pkt_drop_p:
            delay += params.LINK_RETRY_CYCLES
            self._pkt_retransmits.inc()
        if self.pkt_delay_p and self.rng.random() < self.pkt_delay_p:
            delay += self.pkt_delay_cycles
            self._pkt_delays.inc()
        if (self.pkt_dup_p
                and pkt.ptype in (PacketType.READ, PacketType.WRITE)
                and self.rng.random() < self.pkt_dup_p):
            duplicate = True
            self._pkt_dups.inc()
        if delay or duplicate:
            if self._trace is not None:
                self._trace.instant("faults", "faults", "link-fault",
                                    {"addr": hex(pkt.addr),
                                     "delay": delay,
                                     "duplicate": duplicate})
            return delay, duplicate
        return None

    # ------------------------------------------------------ memory faults
    def flip_bits(self, addr: int, bits: int = 2) -> EccOutcome:
        """Flip ``bits`` random bits in the line at ``addr`` right now."""
        self._bitflips.inc()
        outcome = self.ecc.corrupt_line(addr, bits, self.rng)
        if self._trace is not None:
            self._trace.instant("faults", "faults", "bitflip",
                                {"addr": hex(addr), "bits": bits,
                                 "outcome": outcome.name.lower()})
        return outcome

    # --------------------------------------------------- structure faults
    def drop_random_ctt_entry(self) -> bool:
        """Invalidate one randomly chosen CTT entry (silent state loss).

        The destination range quietly stops being tracked: subsequent
        reads return stale backing-store bytes instead of the source
        data.  Returns False when the CTT is absent or empty.
        """
        ctt = self.system.ctt
        if ctt is None or len(ctt) == 0:
            return False
        entry = self.rng.choice(list(ctt.entries))
        if self._trace is not None:
            self._trace.instant("faults", "faults", "ctt-drop",
                                {"dst": hex(entry.dst), "size": entry.size})
        ctt.remove_dest_range(entry.dst, entry.size)
        self._ctt_drops.inc()
        return True

    def drop_random_bpq_entry(self) -> bool:
        """Discard one randomly chosen parked BPQ write (data loss).

        The parked bytes never drain; memory keeps the pre-write
        contents.  Returns False when no controller holds a parked write.
        """
        holders = [mc for mc in self.system.controllers
                   if getattr(mc, "bpq", None) is not None
                   and len(mc.bpq) > 0]
        if not holders:
            return False
        mc = self.rng.choice(holders)
        entry = self.rng.choice(mc.bpq.entries())
        if self._trace is not None:
            self._trace.instant("faults", "faults", "bpq-drop",
                                {"line": hex(entry.line)})
        mc.bpq.drop(entry.line)
        self._bpq_drops.inc()
        # The freed slot can admit a stalled overflow write.
        mc._admit_overflow()
        return True

    # --------------------------------------------------------- spec-driven
    def apply_spec(self, spec: Dict[str, object]) -> None:
        """Arm one parsed spec: set a knob or schedule a timed event."""
        kind = spec["kind"]
        if kind == "pkt-drop":
            self.pkt_drop_p = float(spec.get("p", 0.01))
        elif kind == "pkt-dup":
            self.pkt_dup_p = float(spec.get("p", 0.01))
        elif kind == "pkt-delay":
            self.pkt_delay_p = float(spec.get("p", 0.05))
            self.pkt_delay_cycles = int(spec.get("cycles", 40))
        elif kind == "bitflip":
            addr = int(spec["addr"])
            bits = int(spec.get("bits", 2))
            self._at(spec, lambda: self.flip_bits(addr, bits),
                     label="fault-bitflip")
        elif kind == "ctt-drop":
            self._at(spec, self.drop_random_ctt_entry, label="fault-ctt-drop")
        elif kind == "bpq-drop":
            self._at(spec, self.drop_random_bpq_entry, label="fault-bpq-drop")

    def _at(self, spec: Dict[str, object], thunk, label: str) -> None:
        when = int(spec.get("at", self.system.sim.now))
        if when <= self.system.sim.now:
            thunk()
        else:
            self.system.sim.schedule_at(when, lambda: thunk(), label=label)


def from_specs(system, texts: Iterable[str],
               seed: int = 0) -> FaultInjector:
    """Build, arm and install an injector from CLI-style spec strings."""
    specs: List[Dict[str, object]] = [parse_fault_spec(t) for t in texts]
    injector = FaultInjector(system, seed=seed)
    for spec in specs:
        injector.apply_spec(spec)
    injector.install()
    return injector
