"""Simulator progress watchdog.

A livelocked simulation (e.g. an MCLAZY packet retrying a permanently
full CTT, or two components ping-ponging zero-delay events) used to die
with a bare "exceeded max_events" :class:`SimulationError` after minutes
of wall-clock time and no hint of *what* was spinning.  The watchdog
replaces that with early detection plus a post-mortem:

* :meth:`observe` is called by :class:`repro.sim.engine.Simulator` after
  every fired event, recording the event label into the current window;
* every ``check_every`` events it checks whether simulated time advanced
  since the previous check.  ``stall_checks`` consecutive windows with
  zero time progress means the queue is churning at a frozen clock —
  the definition of a livelock in a discrete-event simulator — and the
  watchdog raises :class:`LivelockError`;
* the exception carries :meth:`post_mortem` output: the label histogram
  of the stalled window (which component is spinning) plus whatever the
  attached ``snapshot_fn`` reports (CTT occupancy, queue depths, ...).

Time that advances — however slowly — is *not* a livelock; bounded
retries with backoff make progress in simulated time and never trip the
watchdog.  That keeps false positives impossible by construction.

A second, orthogonal budget is the **cycle deadline**: a simulation that
keeps making time progress but runs far past its expected simulated
length (a retry loop advancing one cycle at a time, a workload whose
termination condition was corrupted by an injected fault) is just as
dead to a sweep supervisor as a livelocked one.  Passing
``cycle_deadline=N`` makes :meth:`observe` raise
:class:`~repro.common.errors.DeadlineError` — with the same post-mortem
— as soon as ``now`` passes ``N`` simulated cycles.  The supervisor in
:mod:`repro.resilience` classifies that as a deterministic failure
(kind ``sim-deadline``) and quarantines the point without retrying.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common import params
from repro.common.errors import ConfigError, DeadlineError, LivelockError

SnapshotFn = Callable[[], Dict[str, object]]


class Watchdog:
    """Detects zero-time-progress event churn and reports a post-mortem."""

    def __init__(self,
                 snapshot_fn: Optional[SnapshotFn] = None,
                 check_every: int = params.WATCHDOG_CHECK_EVERY_EVENTS,
                 stall_checks: int = params.WATCHDOG_STALL_CHECKS,
                 cycle_deadline: Optional[int] = None):
        if check_every <= 0:
            raise ConfigError("check_every must be positive")
        if stall_checks <= 0:
            raise ConfigError("stall_checks must be positive")
        if cycle_deadline is not None and cycle_deadline <= 0:
            raise ConfigError("cycle_deadline must be positive")
        self.snapshot_fn = snapshot_fn
        self.check_every = check_every
        self.stall_checks = stall_checks
        self.cycle_deadline = cycle_deadline
        self._window_labels: Dict[str, int] = {}
        self._window_events = 0
        self._last_check_now: Optional[int] = None
        self._stalled_windows = 0
        self.total_events = 0

    # ------------------------------------------------------------ observe
    def observe(self, label: str, now: int) -> None:
        """Record one fired event; raise LivelockError when stalled."""
        self.total_events += 1
        self._window_events += 1
        label = label or "<unlabelled>"
        self._window_labels[label] = self._window_labels.get(label, 0) + 1
        if self.cycle_deadline is not None and now > self.cycle_deadline:
            raise DeadlineError(
                f"simulated-cycle deadline exceeded: cycle {now} > "
                f"budget {self.cycle_deadline} "
                f"({self.total_events} events fired)",
                post_mortem=self.post_mortem("cycle deadline exceeded"),
            )
        if self._window_events < self.check_every:
            return

        stalled = self._last_check_now is not None and now <= self._last_check_now
        self._last_check_now = now
        if stalled:
            self._stalled_windows += 1
            if self._stalled_windows >= self.stall_checks:
                raise LivelockError(
                    f"no simulated-time progress across "
                    f"{self._stalled_windows * self.check_every} events "
                    f"(clock stuck at cycle {now})",
                    post_mortem=self.post_mortem("zero time progress"),
                )
            # Keep the stalled window's histogram: if the next window
            # stalls too, the accumulated counts show what is spinning.
            return
        self._stalled_windows = 0
        self._window_labels = {}
        self._window_events = 0

    # -------------------------------------------------------- post-mortem
    def post_mortem(self, reason: str) -> str:
        """Multi-line report of what the simulation was doing when it died."""
        lines = [f"watchdog post-mortem: {reason}",
                 f"  events observed: {self.total_events}"]
        if self._window_labels:
            lines.append("  recent event labels (current window):")
            # Explicit tie-break on the label: equal-count labels must
            # not depend on observation (insertion) order.
            ordered = sorted(self._window_labels.items(),
                             key=lambda kv: (-kv[1], kv[0]))
            for label, count in ordered[:12]:
                lines.append(f"    {count:>8}  {label}")
        if self.snapshot_fn is not None:
            lines.append("  system snapshot:")
            for key, value in self.snapshot_fn().items():
                lines.append(f"    {key}: {value}")
        return "\n".join(lines)
